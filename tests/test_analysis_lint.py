"""Tests for the determinism linter: one positive and one negative
fixture per rule, pragma suppression, path scoping, and the acceptance
fixtures from the analysis-suite issue (the pre-fix eventual.py hash
seed, an injected wall-clock call in core/node.py, and a clean shipped
tree)."""

from pathlib import Path

from repro.analysis import run_lint
from repro.analysis.lint import (
    ALL_RULES,
    LintConfig,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.typing_gate import check_annotations

SIM_PATH = "src/repro/sim/fixture.py"  # path inside an event-ordering dir
STORAGE_PATH = "src/repro/storage/fixture.py"  # event-ordering AND slots dir


def rules_of(violations):
    return [v.rule for v in violations]


class TestWallClock:
    def test_time_time_flagged(self):
        src = "import time\n\ndef tick() -> float:\n    return time.time()\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["no-wall-clock"]

    def test_aliased_import_flagged(self):
        src = "import time as t\n\ndef tick() -> float:\n    return t.monotonic()\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["no-wall-clock"]

    def test_from_import_flagged(self):
        src = "from time import perf_counter\n\nx = perf_counter()\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["no-wall-clock"]

    def test_datetime_now_flagged(self):
        src = "from datetime import datetime\n\nstamp = datetime.now()\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["no-wall-clock"]

    def test_virtual_time_clean(self):
        src = "def tick(sim) -> float:  # repro: lint-ok(typing)\n    return sim.now\n"
        assert lint_source(src, SIM_PATH) == []

    def test_perf_harness_files_exempt(self):
        src = "import time\n\nstart = time.perf_counter()\n"
        assert lint_source(src, "src/repro/perf/report.py") == []
        # ...but only the whitelisted files are.
        assert rules_of(lint_source(src, "src/repro/perf/other.py")) == [
            "no-wall-clock"
        ]


class TestGlobalRandom:
    def test_module_level_random_flagged(self):
        src = "import random\n\nx = random.random()\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["no-global-random"]

    def test_global_shuffle_flagged(self):
        src = "from random import shuffle\n\nshuffle([1, 2])\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["no-global-random"]

    def test_instance_method_clean(self):
        src = (
            "import random\n\n"
            "def draw(rng: random.Random) -> float:\n"
            "    return rng.random()\n"
        )
        assert lint_source(src, SIM_PATH) == []


class TestUnseededRng:
    def test_bare_random_flagged(self):
        src = "import random\n\nrng = random.Random()\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["no-unseeded-rng"]

    def test_none_seed_flagged(self):
        src = "import random\n\nrng = random.Random(None)\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["no-unseeded-rng"]

    def test_system_random_flagged(self):
        src = "import random\n\nrng = random.SystemRandom()\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["no-unseeded-rng"]

    def test_seeded_random_clean(self):
        src = "import random\n\nrng = random.Random(1234)\n"
        assert lint_source(src, SIM_PATH) == []


class TestBuiltinHashSeed:
    def test_prefix_eventual_pattern_flagged(self):
        # The exact shape this repo shipped before the fix: an acceptance
        # criterion of the analysis-suite issue.
        src = (
            "import random\n\n"
            "class Server:\n"
            "    def __init__(self, config, site, name):"
            "  # repro: lint-ok(typing)\n"
            "        self._ae_rng = random.Random(\n"
            "            hash((config.seed, site, name)) & 0xFFFFFFFF\n"
            "        )\n"
        )
        violations = lint_source(src, "src/repro/baselines/eventual.py")
        assert rules_of(violations) == ["no-builtin-hash-seed"]

    def test_hash_into_derive_seed_flagged(self):
        src = (
            "from repro.sim.rng import derive_seed\n\n"
            "s = derive_seed(hash('a'), 'label')\n"
        )
        assert rules_of(lint_source(src, SIM_PATH)) == ["no-builtin-hash-seed"]

    def test_hash_assigned_to_seedy_name_flagged(self):
        src = "seed = hash(('a', 'b'))\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["no-builtin-hash-seed"]

    def test_derive_seed_clean(self):
        src = (
            "import random\n"
            "from repro.sim.rng import derive_seed\n\n"
            "rng = random.Random(derive_seed(42, 'anti-entropy:dc0:s1'))\n"
        )
        assert lint_source(src, SIM_PATH) == []

    def test_hash_outside_seed_context_clean(self):
        # hash() for non-seed purposes (e.g. interning) is not this rule's
        # concern.
        src = "bucket = hash('key') % 16\n"
        assert lint_source(src, SIM_PATH) == []


class TestFrozenMessage:
    def test_unfrozen_dataclass_flagged(self):
        src = (
            "import dataclasses\n"
            "from repro.net.message import Message\n\n"
            "@dataclasses.dataclass\n"
            "class Ping(Message):\n"
            "    n: int = 0\n"
        )
        assert rules_of(lint_source(src, SIM_PATH)) == ["frozen-message"]

    def test_missing_decorator_flagged(self):
        src = (
            "from repro.net.message import Message\n\n"
            "class Ping(Message):\n"
            "    pass\n"
        )
        assert rules_of(lint_source(src, SIM_PATH)) == ["frozen-message"]

    def test_frozen_false_flagged(self):
        src = (
            "import dataclasses\n"
            "from repro.net.message import Message\n\n"
            "@dataclasses.dataclass(frozen=False)\n"
            "class Ping(Message):\n"
            "    n: int = 0\n"
        )
        assert rules_of(lint_source(src, SIM_PATH)) == ["frozen-message"]

    def test_frozen_message_clean(self):
        src = (
            "import dataclasses\n"
            "from repro.net.message import Message\n\n"
            "@dataclasses.dataclass(frozen=True)\n"
            "class Ping(Message):\n"
            "    n: int = 0\n"
        )
        assert lint_source(src, SIM_PATH) == []

    def test_unrelated_class_clean(self):
        src = (
            "import dataclasses\n\n"
            "@dataclasses.dataclass\n"
            "class Config:\n"
            "    n: int = 0\n"
        )
        assert lint_source(src, SIM_PATH) == []


class TestMutableDefault:
    def test_list_default_flagged(self):
        src = "def f(deps=[]):  # repro: lint-ok(typing)\n    return deps\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["no-mutable-default"]

    def test_dict_call_default_flagged(self):
        src = "def f(deps=dict()):  # repro: lint-ok(typing)\n    return deps\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["no-mutable-default"]

    def test_none_default_clean(self):
        src = (
            "def f(deps=None):  # repro: lint-ok(typing)\n"
            "    return deps or []\n"
        )
        assert lint_source(src, SIM_PATH) == []


class TestSetIteration:
    def test_iterating_set_literal_flagged(self):
        src = "for x in {1, 2, 3}:\n    print(x)\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["set-iteration"]

    def test_iterating_set_valued_name_flagged(self):
        src = (
            "def drain():  # repro: lint-ok(typing)\n"
            "    pending = set()\n"
            "    for x in pending:\n"
            "        print(x)\n"
        )
        assert rules_of(lint_source(src, SIM_PATH)) == ["set-iteration"]

    def test_iterating_set_attr_bound_later_flagged(self):
        # The binding appears textually after the loop: the pre-pass must
        # still catch it.
        src = (
            "class A:\n"
            "    __slots__ = ('_timers',)\n\n"
            "    def drain(self) -> None:\n"
            "        for t in self._timers:\n"
            "            t.cancel()\n\n"
            "    def reset(self) -> None:\n"
            "        self._timers = set()\n"
        )
        assert rules_of(lint_source(src, SIM_PATH)) == ["set-iteration"]

    def test_sorted_iteration_clean(self):
        # sorted() satisfies set-iteration; the tie-breaking key
        # satisfies sort-tie-identity (SIM_PATH is a delivery-path dir).
        src = (
            "def drain():  # repro: lint-ok(typing)\n"
            "    pending = set()\n"
            "    for x in sorted(pending, key=lambda e: (e.time, e.seq)):\n"
            "        print(x)\n"
        )
        assert lint_source(src, SIM_PATH) == []

    def test_rule_scoped_to_event_ordering_dirs(self):
        src = (
            "def drain():  # repro: lint-ok(typing)\n"
            "    pending = set()\n"
            "    for x in pending:\n"
            "        print(x)\n"
        )
        # metrics/ is not event-ordering code: aggregation order there
        # cannot reorder sends.
        assert lint_source(src, "src/repro/metrics/fixture.py") == []
        # Paths outside the repro tree (e.g. test fixtures) keep all rules.
        assert rules_of(lint_source(src, "fixture.py")) == ["set-iteration"]


class TestSortTieIdentity:
    NET_PATH = "src/repro/net/fixture.py"

    def test_heappush_without_seq_flagged(self):
        src = (
            "import heapq\n"
            "def enqueue(heap, time, ev):  # repro: lint-ok(typing)\n"
            "    heapq.heappush(heap, (time, ev))\n"
        )
        assert rules_of(lint_source(src, SIM_PATH)) == ["sort-tie-identity"]

    def test_heappush_with_seq_tiebreak_clean(self):
        src = (
            "import heapq\n"
            "def enqueue(heap, time, seq, ev):  # repro: lint-ok(typing)\n"
            "    heapq.heappush(heap, (time, seq, ev))\n"
        )
        assert lint_source(src, SIM_PATH) == []

    def test_aliased_heappush_checked(self):
        # The kernel binds _heappush = heapq.heappush; the alias is still
        # a delivery-order decision.
        src = (
            "import heapq\n"
            "_heappush = heapq.heappush\n"
            "def enqueue(heap, time, ev):  # repro: lint-ok(typing)\n"
            "    _heappush(heap, (time, ev))\n"
        )
        assert rules_of(lint_source(src, SIM_PATH)) == ["sort-tie-identity"]

    def test_sorted_without_key_flagged(self):
        src = "def order(msgs):  # repro: lint-ok(typing)\n    return sorted(msgs)\n"
        assert rules_of(lint_source(src, self.NET_PATH)) == ["sort-tie-identity"]

    def test_sorted_with_tie_prone_key_flagged(self):
        src = (
            "def order(msgs):  # repro: lint-ok(typing)\n"
            "    return sorted(msgs, key=lambda m: m.time)\n"
        )
        assert rules_of(lint_source(src, self.NET_PATH)) == ["sort-tie-identity"]

    def test_sorted_with_seq_lambda_clean(self):
        src = (
            "def order(msgs):  # repro: lint-ok(typing)\n"
            "    return sorted(msgs, key=lambda m: (m.time, m.seq))\n"
        )
        assert lint_source(src, self.NET_PATH) == []

    def test_sorted_with_designated_sort_key_clean(self):
        src = (
            "from repro.net.boundary import Envelope\n"
            "def order(envs):  # repro: lint-ok(typing)\n"
            "    return sorted(envs, key=Envelope.sort_key)\n"
        )
        assert lint_source(src, self.NET_PATH) == []

    def test_pragma_suppresses(self):
        src = (
            "def order(names):  # repro: lint-ok(typing)\n"
            "    return sorted(names)  # repro: lint-ok(sort-tie-identity)\n"
        )
        assert lint_source(src, self.NET_PATH) == []

    def test_rule_scoped_to_delivery_dirs(self):
        # core/ sorts are event-ordering but not delivery-order decisions;
        # the (time, seq) discipline is a sim/net contract.
        src = "def order(msgs):  # repro: lint-ok(typing)\n    return sorted(msgs)\n"
        assert lint_source(src, "src/repro/core/fixture.py") == []
        assert lint_source(src, "src/repro/metrics/fixture.py") == []


class TestSlots:
    SRC = (
        "class Hot:\n"
        "    def __init__(self, key):\n"
        "        self.key = key\n"
        "        self.count = 0\n"
    )

    def test_instance_attrs_without_slots_flagged(self):
        violations = lint_source(self.SRC, STORAGE_PATH)
        assert rules_of(violations) == ["slots"]
        # Anchored to the class statement so a class-line pragma works.
        assert violations[0].line == 1
        assert "Hot" in violations[0].message

    def test_slotted_class_clean(self):
        src = (
            "class Hot:\n"
            "    __slots__ = ('key', 'count')\n\n"
            "    def __init__(self, key):\n"
            "        self.key = key\n"
            "        self.count = 0\n"
        )
        assert lint_source(src, STORAGE_PATH) == []

    def test_annotated_slots_declaration_counts(self):
        src = (
            "class Hot:\n"
            "    __slots__: tuple = ('key',)\n\n"
            "    def __init__(self, key):\n"
            "        self.key = key\n"
        )
        assert lint_source(src, STORAGE_PATH) == []

    def test_augmented_assignment_counts_as_instance_attr(self):
        src = (
            "class Hot:\n"
            "    def bump(self):\n"
            "        self.count += 1\n"
        )
        assert rules_of(lint_source(src, STORAGE_PATH)) == ["slots"]

    def test_class_without_instance_attrs_clean(self):
        src = (
            "class Stateless:\n"
            "    def compute(self, x):\n"
            "        return x + 1\n"
        )
        assert lint_source(src, STORAGE_PATH) == []

    def test_dataclass_exempt(self):
        src = (
            "import dataclasses\n\n"
            "@dataclasses.dataclass\n"
            "class Record:\n"
            "    key: str = ''\n\n"
            "    def clear(self):\n"
            "        self.key = ''\n"
        )
        assert lint_source(src, STORAGE_PATH) == []

    def test_rule_scoped_to_hot_path_dirs(self):
        # metrics/ classes are built a handful of times per run; their
        # __dict__ cost is irrelevant.
        assert lint_source(self.SRC, "src/repro/metrics/fixture.py") == []
        # Top-level repro modules (cli, errors, api) are out of scope too.
        assert lint_source(self.SRC, "src/repro/errors.py") == []

    def test_class_line_pragma_suppresses(self):
        src = (
            "class Hot:  # repro: lint-ok(slots) — monkeypatched per instance\n"
            "    def __init__(self, key):\n"
            "        self.key = key\n"
        )
        assert lint_source(src, STORAGE_PATH) == []


class TestModuleState:
    NET_PATH = "src/repro/net/fixture.py"

    def test_module_level_dict_flagged(self):
        src = "CACHE = {}\n"
        assert rules_of(lint_source(src, self.NET_PATH)) == ["module-mutable-state"]

    def test_module_level_list_and_constructor_flagged(self):
        src = "registry = list()\npending = []\n"
        assert rules_of(lint_source(src, self.NET_PATH)) == [
            "module-mutable-state",
            "module-mutable-state",
        ]

    def test_collections_constructors_flagged(self):
        src = (
            "import collections\n"
            "queue = collections.deque()\n"
            "counts = collections.defaultdict(int)\n"
        )
        assert rules_of(lint_source(src, self.NET_PATH)) == [
            "module-mutable-state",
            "module-mutable-state",
        ]

    def test_immutable_module_constants_clean(self):
        src = "LIMITS = (1, 2, 3)\nNAME = 'x'\nEPS = 1e-9\n"
        assert lint_source(src, self.NET_PATH) == []

    def test_function_and_class_scope_clean(self):
        src = (
            "def build():  # repro: lint-ok(typing)\n"
            "    cache = {}\n"
            "    return cache\n\n"
            "class Table:  # repro: lint-ok(slots)\n"
            "    defaults = {'a': 1}\n"
        )
        assert lint_source(src, self.NET_PATH) == []

    def test_dunder_names_exempt(self):
        src = "__all__ = ['a', 'b']\n"
        assert lint_source(src, self.NET_PATH) == []

    def test_try_except_block_is_module_scope(self):
        src = (
            "try:\n"
            "    import fast\n"
            "    POOL = {}\n"
            "except ImportError:\n"
            "    POOL = dict()\n"
        )
        assert rules_of(lint_source(src, self.NET_PATH)) == [
            "module-mutable-state",
            "module-mutable-state",
        ]

    def test_pragma_suppresses(self):
        src = "_POOL = {}  # repro: lint-ok(module-mutable-state) — per-process intern pool\n"
        assert lint_source(src, self.NET_PATH) == []

    def test_rule_scoped_to_worker_imported_dirs(self):
        src = "CACHE = {}\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["module-mutable-state"]
        assert rules_of(lint_source(src, STORAGE_PATH)) == ["module-mutable-state"]
        # metrics/ and top-level modules run in the coordinator only.
        assert lint_source(src, "src/repro/metrics/fixture.py") == []
        assert lint_source(src, "src/repro/errors.py") == []


class TestPragmas:
    def test_line_pragma_suppresses_one_rule(self):
        src = "import time\n\nx = time.time()  # repro: lint-ok(no-wall-clock)\n"
        assert lint_source(src, SIM_PATH) == []

    def test_line_pragma_is_rule_specific(self):
        src = "import time\n\nx = time.time()  # repro: lint-ok(set-iteration)\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["no-wall-clock"]

    def test_file_pragma_suppresses_whole_file(self):
        src = (
            "# repro: lint-ok-file(no-wall-clock)\n"
            "import time\n\n"
            "a = time.time()\n"
            "b = time.monotonic()\n"
        )
        assert lint_source(src, SIM_PATH) == []

    def test_file_pragma_only_in_first_ten_lines(self):
        src = "\n" * 11 + "# repro: lint-ok-file(no-wall-clock)\nimport time\nx = time.time()\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["no-wall-clock"]


class TestEntryPoints:
    def test_syntax_error_reported_not_raised(self):
        violations = lint_source("def broken(:\n", SIM_PATH)
        assert [v.rule for v in violations] == ["syntax-error"]

    def test_lint_file_and_paths(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nx = time.time()\n")
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert rules_of(lint_file(bad)) == ["no-wall-clock"]
        assert rules_of(lint_paths([tmp_path])) == ["no-wall-clock"]

    def test_config_can_disable_rules(self):
        src = "import time\nx = time.time()\n"
        config = LintConfig(rules=tuple(r for r in ALL_RULES if r != "no-wall-clock"))
        assert lint_source(src, SIM_PATH, config) == []

    def test_violation_format_is_clickable(self):
        violation = lint_source("import time\nx = time.time()\n", SIM_PATH)[0]
        assert violation.format().startswith(f"{SIM_PATH}:2:")
        assert "[no-wall-clock]" in violation.format()


KERNELCORE_PATH = "src/repro/kernelcore/fixture.py"  # mypyc-compiled dir


class TestCompiledKernelClean:
    def test_getrefcount_flagged(self):
        src = (
            "import sys\n\n"
            "def live(obj: object) -> bool:\n"
            "    return sys.getrefcount(obj) > 3\n"
        )
        assert rules_of(lint_source(src, KERNELCORE_PATH)) == [
            "compiled-kernel-clean"
        ]

    def test_dynamic_attribute_builtins_flagged(self):
        src = (
            "def poke(obj: object) -> object:\n"
            "    return getattr(obj, 'x', None)\n"
        )
        assert rules_of(lint_source(src, KERNELCORE_PATH)) == [
            "compiled-kernel-clean"
        ]
        src = "def wipe(obj: object) -> None:\n    setattr(obj, 'x', 1)\n"
        assert rules_of(lint_source(src, KERNELCORE_PATH)) == [
            "compiled-kernel-clean"
        ]

    def test_dunder_dict_access_flagged(self):
        src = "def peek(obj: object) -> dict:\n    return obj.__dict__\n"
        assert rules_of(lint_source(src, KERNELCORE_PATH)) == [
            "compiled-kernel-clean"
        ]

    def test_module_level_mutable_container_flagged(self):
        src = "_CACHE: dict = {}\n"
        assert "compiled-kernel-clean" in rules_of(
            lint_source(src, KERNELCORE_PATH)
        )

    def test_unannotated_def_flagged(self):
        src = "def tick(x):\n    return x + 1\n"
        violations = lint_source(src, KERNELCORE_PATH)
        assert rules_of(violations) == ["compiled-kernel-clean"]
        assert "x, return" in violations[0].message

    def test_missing_return_annotation_flagged(self):
        src = "def tick(x: int):\n    return x + 1\n"
        assert rules_of(lint_source(src, KERNELCORE_PATH)) == [
            "compiled-kernel-clean"
        ]

    def test_self_needs_no_annotation(self):
        src = (
            "class Core:\n"
            "    def tick(self, x: int) -> int:\n"
            "        return x + 1\n"
            "    @classmethod\n"
            "    def make(cls) -> 'Core':\n"
            "        return cls()\n"
        )
        assert lint_source(src, KERNELCORE_PATH) == []

    def test_clean_core_passes(self):
        src = (
            "from typing import Tuple\n\n"
            "SCALE: int = 1000\n\n"
            "def tick(physical: int, logical: int, wall: int) -> Tuple[int, int]:\n"
            "    if wall > physical:\n"
            "        return (wall, 0)\n"
            "    return (physical, logical + 1)\n"
        )
        assert lint_source(src, KERNELCORE_PATH) == []

    def test_rule_scoped_to_kernelcore(self):
        # Ordinary python elsewhere in the tree is exempt: the rule is
        # opt-in by directory, not default-on.
        src = "def tick(x):\n    return getattr(x, 'now')\n"
        assert "compiled-kernel-clean" not in rules_of(
            lint_source(src, "src/repro/metrics/fixture.py")
        )
        assert "compiled-kernel-clean" not in rules_of(
            lint_source(src, "fixture.py")
        )

    def test_pragma_suppresses(self):
        src = (
            "def peek(obj: object) -> object:\n"
            "    return getattr(obj, 'x')  # repro: lint-ok(compiled-kernel-clean)\n"
        )
        assert lint_source(src, KERNELCORE_PATH) == []

    def test_shipped_kernelcore_is_clean(self):
        root = Path(__file__).resolve().parents[1] / "src/repro/kernelcore"
        assert lint_paths([root]) == []


class TestShippedTree:
    def test_shipped_tree_is_clean(self):
        assert run_lint() == []

    def test_injected_wall_clock_in_node_flagged(self):
        # Acceptance criterion: injecting time.time() into core/node.py
        # must trip the linter.
        node_path = Path(__file__).resolve().parents[1] / "src/repro/core/node.py"
        source = node_path.read_text(encoding="utf-8")
        injected = source + (
            "\n\nimport time\n\n"
            "def _leak_wall_clock() -> float:\n"
            "    return time.time()\n"
        )
        violations = lint_source(injected, str(node_path))
        assert "no-wall-clock" in rules_of(violations)

    def test_annotation_gate_is_clean(self):
        assert check_annotations() == []
