"""Protocol tests for the ChainReaction server (single DC)."""

import pytest

from helpers import make_store, run_op

from repro.storage import VersionVector


def node_named(store, name, site="dc0"):
    return next(n for n in store.nodes[site] if n.name == name)


def chain_nodes(store, key, site="dc0"):
    view = store.managers[site].view
    return [node_named(store, name, site) for name in view.chain_for(key)]


class TestPutPath:
    def test_put_assigns_incrementing_versions(self):
        store = make_store()
        s = store.session()
        v1 = run_op(store, s.put("k", "a")).version
        v2 = run_op(store, s.put("k", "b")).version
        assert v1 == VersionVector({"dc0": 1})
        assert v2 == VersionVector({"dc0": 2})

    def test_ack_comes_from_position_k_minus_1(self):
        store = make_store(ack_k=2)
        s = store.session()
        result = run_op(store, s.put("k", "v"))
        assert result.acked_by == "1"  # chain index 1 == second server

    def test_ack_k1_comes_from_head(self):
        store = make_store(ack_k=1)
        s = store.session()
        assert run_op(store, s.put("k", "v")).acked_by == "0"

    def test_ack_k_equals_r_comes_from_tail_and_is_stable(self):
        store = make_store(ack_k=3)
        s = store.session()
        result = run_op(store, s.put("k", "v"))
        assert result.acked_by == "2"
        assert result.stable

    def test_prefix_property_at_ack_time(self):
        """When the client is acked, the first k servers hold the write."""
        store = make_store(ack_k=2)
        s = store.session()
        fut = s.put("key", "value")

        checked = []

        def on_ack(_f):
            nodes = chain_nodes(store, "key")
            checked.append([n.store.get("key") is not None for n in nodes[:2]])

        fut.add_callback(on_ack)
        store.run(until=1.0)
        assert checked == [[True, True]]

    def test_write_eventually_on_all_chain_nodes(self):
        store = make_store()
        s = store.session()
        run_op(store, s.put("key", "value"))
        store.run(until=2.0)
        for node in chain_nodes(store, "key"):
            assert node.store.get("key").value == "value"

    def test_non_chain_nodes_do_not_store_key(self):
        store = make_store()
        s = store.session()
        run_op(store, s.put("key", "value"))
        store.run(until=2.0)
        chain = set(store.managers["dc0"].view.chain_for("key"))
        for node in store.servers():
            if node.name not in chain:
                assert node.store.get("key") is None

    def test_put_to_non_head_is_retried_transparently(self):
        """A client with a deliberately wrong view still completes its put."""
        store = make_store()
        s = store.session()
        # Shrink the client's view so its ring excludes the true head and
        # it addresses the wrong server first.
        import dataclasses

        view = s.view
        true_head = view.chain_for("key")[0]
        smaller = tuple(name for name in view.servers if name != true_head)
        s.view = dataclasses.replace(view, epoch=0, servers=smaller)
        result = run_op(store, s.put("key", "v"), extra=2.0)
        assert result.version.get("dc0") == 1
        assert s.retries >= 1

    def test_delete_writes_tombstone(self):
        store = make_store()
        s = store.session()
        run_op(store, s.put("k", "v"))
        run_op(store, s.delete("k"))
        assert run_op(store, s.get("k")).value is None
        store.run(until=2.0)
        tail = chain_nodes(store, "k")[-1]
        assert tail.store.get_record("k").is_deleted


class TestStability:
    def test_tail_marks_stable_and_notifies_chain(self):
        store = make_store()
        s = store.session()
        version = run_op(store, s.put("key", "v")).version
        store.run(until=2.0)
        for node in chain_nodes(store, "key"):
            assert node.stability.is_stable("key", version)

    def test_version_not_stable_before_tail_applies(self):
        store = make_store(ack_k=1)
        s = store.session()
        fut = s.put("key", "v")
        stable_at_ack = []

        def on_ack(_f):
            head = chain_nodes(store, "key")[0]
            stable_at_ack.append(head.stability.is_stable("key", _f.result().version))

        fut.add_callback(on_ack)
        store.run(until=2.0)
        assert stable_at_ack == [False]

    def test_wait_stable_resolves_on_stability(self):
        store = make_store()
        s = store.session()
        run_op(store, s.put("key", "v"))
        store.run(until=2.0)
        tail = chain_nodes(store, "key")[-1]
        fut = tail.rpc_wait_stable(("key", {"dc0": 1}), tail.address)
        assert fut.done() and fut.result() is True

    def test_wait_stable_blocks_for_future_version(self, ):
        store = make_store()
        tail = chain_nodes(store, "key")[-1]
        fut = tail.rpc_wait_stable(("key", {"dc0": 5}), tail.address)
        assert not fut.done()
        assert tail.stability.pending_waiters() == 1


class TestReadPath:
    def test_get_missing_key(self):
        store = make_store()
        s = store.session()
        result = run_op(store, s.get("ghost"))
        assert result.value is None
        assert result.version.is_zero()

    def test_get_returns_written_value(self):
        store = make_store()
        s = store.session()
        run_op(store, s.put("k", "v"))
        result = run_op(store, s.get("k"))
        assert result.value == "v"
        assert result.version == VersionVector({"dc0": 1})

    def test_reads_spread_over_chain_when_stable(self):
        store = make_store()
        writer = store.session()
        run_op(store, writer.put("hot", "v"))
        store.run(until=2.0)  # let it stabilise
        served_by = set()
        reader = store.session()
        for _ in range(60):
            served_by.add(run_op(store, reader.get("hot")).served_by)
        chain = store.managers["dc0"].view.chain_for("hot")
        assert served_by == set(chain)

    def test_tail_only_reads_when_prefix_disabled(self):
        store = make_store(allow_prefix_reads=False)
        writer = store.session()
        run_op(store, writer.put("hot", "v"))
        store.run(until=2.0)
        chain = store.managers["dc0"].view.chain_for("hot")
        reader = store.session()
        for _ in range(20):
            assert run_op(store, reader.get("hot")).served_by == chain[-1]

    def test_own_unstable_write_readable_immediately(self):
        """Read-your-writes: the ack prefix always serves the session."""
        store = make_store(ack_k=1)
        s = store.session()
        for i in range(20):
            run_op(store, s.put("k", f"v{i}"))
            assert run_op(store, s.get("k")).value == f"v{i}"


class TestDependencyWaits:
    @staticmethod
    def _disjoint_keys(store):
        """Two keys whose heads do not share chain knowledge: the head of
        the second key is not in the first key's chain."""
        view = store.managers["dc0"].view
        for i in range(200):
            for j in range(200):
                x, y = f"x{i}", f"y{j}"
                if view.chain_for(y)[0] not in view.chain_for(x):
                    return x, y
        raise AssertionError("no disjoint key pair found")

    def test_put_waits_for_unstable_dependency(self):
        """A put carrying an unstable dependency is held at the head until
        the dependency reaches the tail of its own chain."""
        store = make_store(ack_k=1, servers_per_site=6)
        x, y = self._disjoint_keys(store)
        s = store.session()
        # k=1 ack leaves 2 chain hops before x's write is DC-stable.
        run_op(store, s.put(x, "1"))
        assert x in s.dependency_table()
        fut = s.put(y, "2")
        store.run(until=2.0)
        assert fut.result().version.get("dc0") == 1
        # The dependency machinery engaged on y's head.
        assert sum(n.dep_waits for n in store.servers()) >= 1
        # And y is only readable with x DC-stable:
        x_tail = chain_nodes(store, x)[-1]
        assert x_tail.stability.is_stable(x, VersionVector({"dc0": 1}))

    def test_no_wait_when_dependency_already_stable(self):
        store = make_store(ack_k=3)  # writes born stable
        s = store.session()
        run_op(store, s.put("x", "1"))
        run_op(store, s.put("y", "2"))
        assert sum(n.dep_waits for n in store.servers()) == 0

    def test_dep_wait_timeout_lets_put_proceed(self):
        """A dependency that can never stabilise (its data was lost) stalls
        the put for dep_wait_timeout, then the write goes through."""
        from repro.core.messages import DepEntry, PutRequest

        store = make_store(dep_wait_timeout=0.3)
        s = store.session()
        head = chain_nodes(store, "y")[0]
        ghost_dep = {"zzz": DepEntry(VersionVector({"dc0": 9}), 0)}
        head.on_put_request(
            PutRequest(request_id=1, key="y", value="v", deps=ghost_dep, reply_to=s.address),
            s.address,
        )
        store.run(until=2.0)
        assert head.dep_wait_timeouts == 1
        assert any(n.store.get("y") for n in chain_nodes(store, "y"))


class TestCounters:
    def test_served_counters_increment(self):
        store = make_store()
        s = store.session()
        run_op(store, s.put("k", "v"))
        run_op(store, s.get("k"))
        assert sum(n.puts_served for n in store.servers()) == 1
        assert sum(n.gets_served for n in store.servers()) == 1

    def test_protocol_stats_aggregates(self):
        store = make_store()
        s = store.session()
        run_op(store, s.put("k", "v"))
        stats = store.protocol_stats()
        assert stats["puts_served"] == 1
        assert stats["messages_sent"] > 0
