"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.net import FixedLatency, Network
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def network(sim):
    """A deterministic network: every link exactly 1 ms."""
    return Network(sim, lan=FixedLatency(0.001), wan=FixedLatency(0.010))
