"""Unit tests for futures and generator processes."""

import pytest

from repro.errors import RequestTimeout, SimulationError
from repro.sim import (
    Future,
    all_of,
    any_of,
    n_of,
    sleep_future,
    spawn,
    with_timeout,
)


class TestFuture:
    def test_resolves_once_with_value(self, sim):
        fut = Future(sim)
        assert not fut.done()
        fut.set_result(42)
        assert fut.done() and fut.succeeded()
        assert fut.result() == 42

    def test_double_resolution_rejected(self, sim):
        fut = Future(sim)
        fut.set_result(1)
        with pytest.raises(SimulationError):
            fut.set_result(2)

    def test_try_set_result_returns_false_when_done(self, sim):
        fut = Future(sim)
        assert fut.try_set_result(1) is True
        assert fut.try_set_result(2) is False
        assert fut.result() == 1

    def test_exception_reraised_by_result(self, sim):
        fut = Future(sim)
        fut.set_exception(ValueError("boom"))
        assert fut.failed()
        with pytest.raises(ValueError, match="boom"):
            fut.result()

    def test_result_on_pending_future_is_an_error(self, sim):
        with pytest.raises(SimulationError):
            Future(sim).result()

    def test_callback_fires_on_resolution(self, sim):
        fut = Future(sim)
        seen = []
        fut.add_callback(lambda f: seen.append(f.result()))
        fut.set_result(7)
        assert seen == [7]

    def test_callback_fires_immediately_if_already_done(self, sim):
        fut = Future(sim)
        fut.set_result(7)
        seen = []
        fut.add_callback(lambda f: seen.append(f.result()))
        assert seen == [7]

    def test_resolved_at_records_virtual_time(self, sim):
        fut = Future(sim)
        sim.schedule(2.5, fut.set_result, None)
        sim.run()
        assert fut.resolved_at == 2.5


class TestProcess:
    def test_process_sleeps_on_numeric_yield(self, sim):
        log = []

        def proc():
            log.append(sim.now)
            yield 1.0
            log.append(sim.now)
            yield 0.5
            log.append(sim.now)

        spawn(sim, proc())
        sim.run()
        assert log == [0.0, 1.0, 1.5]

    def test_process_receives_future_value(self, sim):
        fut = Future(sim)
        sim.schedule(1.0, fut.set_result, "hello")
        results = []

        def proc():
            value = yield fut
            results.append(value)

        spawn(sim, proc())
        sim.run()
        assert results == ["hello"]

    def test_return_value_resolves_process_future(self, sim):
        def proc():
            yield 0.1
            return 99

        p = spawn(sim, proc())
        sim.run()
        assert p.result() == 99

    def test_future_exception_thrown_into_generator(self, sim):
        fut = Future(sim)
        sim.schedule(1.0, fut.set_exception, RequestTimeout("late"))
        caught = []

        def proc():
            try:
                yield fut
            except RequestTimeout as exc:
                caught.append(str(exc))
            return "recovered"

        p = spawn(sim, proc())
        sim.run()
        assert caught == ["late"]
        assert p.result() == "recovered"

    def test_uncaught_exception_fails_process(self, sim):
        def proc():
            yield 0.1
            raise ValueError("dead")

        p = spawn(sim, proc())
        sim.run()
        assert p.failed()
        with pytest.raises(ValueError):
            p.result()

    def test_yield_none_yields_one_round(self, sim):
        order = []

        def a():
            order.append("a1")
            yield None
            order.append("a2")

        def b():
            order.append("b1")
            yield None
            order.append("b2")

        spawn(sim, a())
        spawn(sim, b())
        sim.run()
        assert order == ["a1", "b1", "a2", "b2"]

    def test_unsupported_yield_fails_process(self, sim):
        def proc():
            yield "not a future"

        p = spawn(sim, proc())
        sim.run()
        assert p.failed()

    def test_interrupt_stops_process(self, sim):
        progressed = []

        def proc():
            yield 1.0
            progressed.append(True)

        p = spawn(sim, proc())
        sim.schedule(0.5, p.interrupt)
        sim.run()
        assert p.failed()
        assert progressed == []

    def test_nested_process_await(self, sim):
        def inner():
            yield 0.5
            return 10

        def outer():
            value = yield spawn(sim, inner())
            return value * 2

        p = spawn(sim, outer())
        sim.run()
        assert p.result() == 20


class TestCombinators:
    def test_sleep_future_resolves_after_delay(self, sim):
        fut = sleep_future(sim, 2.0)
        sim.run()
        assert fut.resolved_at == 2.0

    def test_all_of_collects_results_in_input_order(self, sim):
        futures = [Future(sim) for _ in range(3)]
        sim.schedule(3.0, futures[0].set_result, "a")
        sim.schedule(1.0, futures[1].set_result, "b")
        sim.schedule(2.0, futures[2].set_result, "c")
        combined = all_of(sim, futures)
        sim.run()
        assert combined.result() == ["a", "b", "c"]

    def test_all_of_empty_resolves_immediately(self, sim):
        assert all_of(sim, []).result() == []

    def test_all_of_fails_fast(self, sim):
        futures = [Future(sim) for _ in range(2)]
        sim.schedule(1.0, futures[0].set_exception, ValueError("x"))
        combined = all_of(sim, futures)
        sim.run()
        assert combined.failed()

    def test_any_of_returns_first(self, sim):
        futures = [Future(sim) for _ in range(3)]
        sim.schedule(2.0, futures[0].set_result, "slow")
        sim.schedule(1.0, futures[1].set_result, "fast")
        winner = any_of(sim, futures)
        sim.run()
        assert winner.result() == "fast"

    def test_any_of_requires_input(self, sim):
        with pytest.raises(SimulationError):
            any_of(sim, [])

    def test_n_of_resolves_at_quorum(self, sim):
        futures = [Future(sim) for _ in range(3)]
        sim.schedule(1.0, futures[2].set_result, "c")
        sim.schedule(2.0, futures[0].set_result, "a")
        sim.schedule(9.0, futures[1].set_result, "b")
        quorum = n_of(sim, futures, 2)
        sim.run(until=3.0)
        assert quorum.done()
        assert quorum.result() == ["c", "a"]

    def test_n_of_fails_when_quorum_impossible(self, sim):
        futures = [Future(sim) for _ in range(3)]
        sim.schedule(1.0, futures[0].set_exception, ValueError("x"))
        sim.schedule(2.0, futures[1].set_exception, ValueError("y"))
        quorum = n_of(sim, futures, 2)
        sim.run()
        assert quorum.failed()

    def test_n_of_tolerates_allowed_failures(self, sim):
        futures = [Future(sim) for _ in range(3)]
        sim.schedule(1.0, futures[0].set_exception, ValueError("x"))
        sim.schedule(2.0, futures[1].set_result, "b")
        sim.schedule(3.0, futures[2].set_result, "c")
        quorum = n_of(sim, futures, 2)
        sim.run()
        assert quorum.result() == ["b", "c"]

    def test_n_of_validates_bounds(self, sim):
        with pytest.raises(SimulationError):
            n_of(sim, [Future(sim)], 2)

    def test_with_timeout_passes_through_fast_result(self, sim):
        fut = Future(sim)
        sim.schedule(0.5, fut.set_result, "ok")
        wrapped = with_timeout(sim, fut, 1.0)
        sim.run()
        assert wrapped.result() == "ok"

    def test_with_timeout_fails_late_result(self, sim):
        fut = Future(sim)
        sim.schedule(5.0, fut.try_set_result, "late")
        wrapped = with_timeout(sim, fut, 1.0, "op x")
        sim.run()
        assert wrapped.failed()
        with pytest.raises(RequestTimeout, match="op x"):
            wrapped.result()
