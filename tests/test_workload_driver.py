"""Integration tests for the closed-loop workload runner."""

import pytest

from helpers import make_store

from repro.baselines import build_store
from repro.checker import GET, PUT
from repro.workload import WorkloadRunner, workload


@pytest.fixture(scope="module")
def result():
    store = build_store("chainreaction", servers_per_site=4, chain_length=3, seed=13)
    spec = workload("A", record_count=30, value_size=32)
    runner = WorkloadRunner(store, spec, n_clients=4, duration=0.6, warmup=0.2)
    return runner.run()


class TestRunResult:
    def test_operations_completed(self, result):
        assert result.ops_completed > 100

    def test_throughput_consistent_with_counts(self, result):
        assert result.throughput == pytest.approx(result.ops_completed / 0.6)

    def test_no_errors_in_steady_state(self, result):
        assert result.errors == 0

    def test_latencies_recorded_for_both_ops(self, result):
        assert result.get_latency.count > 0
        assert result.put_latency.count > 0
        assert result.get_latency.count + result.put_latency.count == result.ops_completed

    def test_latencies_positive_and_sane(self, result):
        assert 0 < result.get_latency.percentile(50) < 0.1
        assert 0 < result.put_latency.percentile(50) < 0.1

    def test_history_matches_counts(self, result):
        assert len(result.history) == result.ops_completed
        assert len(result.history.puts()) == result.put_latency.count
        assert len(result.history.gets()) == result.get_latency.count

    def test_history_is_valid(self, result):
        result.history.validate()

    def test_warmup_excluded(self, result):
        assert all(op.t_return >= 0.2 for op in result.history)

    def test_metadata_sampled_once_per_op(self, result):
        assert result.metadata_bytes.count == result.ops_completed

    def test_timeline_total_matches(self, result):
        assert result.timeline.total() == result.ops_completed

    def test_summary_row_fields(self, result):
        row = result.summary_row()
        assert row["protocol"] == "chainreaction"
        assert row["workload"] == "A"
        assert row["clients"] == 4
        assert row["errors"] == 0


class TestDriverMechanics:
    def test_unique_values_per_put(self, result):
        values = [op.value for op in result.history if op.op == PUT]
        # driver payloads are unique per (session, seq)
        recorded = [v for v in values if v is not None]
        assert len(recorded) == 0  # puts record value=None; uniqueness is on the wire

    def test_insert_workload_extends_keyspace(self):
        store = build_store("chainreaction", servers_per_site=4, chain_length=3, seed=3)
        spec = workload("D", record_count=20, value_size=16)
        runner = WorkloadRunner(store, spec, n_clients=2, duration=0.5, warmup=0.1)
        result = runner.run()
        inserted = {op.key for op in result.history if op.op == PUT}
        beyond_initial = {k for k in inserted if int(k.replace("user", "")) >= 20}
        assert beyond_initial, "workload D never inserted new keys"

    def test_history_recording_can_be_disabled(self):
        store = build_store("chainreaction", servers_per_site=4, chain_length=3, seed=3)
        spec = workload("C", record_count=10, value_size=16)
        runner = WorkloadRunner(
            store, spec, n_clients=2, duration=0.3, warmup=0.1, record_history=False
        )
        result = runner.run()
        assert result.ops_completed > 0
        assert len(result.history) == 0

    def test_clients_spread_across_sites(self):
        store = build_store(
            "chainreaction", sites=("dc0", "dc1"), servers_per_site=4, chain_length=3, seed=3
        )
        spec = workload("C", record_count=10, value_size=16)
        runner = WorkloadRunner(store, spec, n_clients=4, duration=0.3, warmup=0.1)
        result = runner.run()
        sites = {op.site for op in result.history}
        assert sites == {"dc0", "dc1"}
