"""Tests for the chain-invariant monitor: a clean E1-style run, and one
deliberately broken run per invariant (prefix, stability grounding,
stability monotonicity via grounding, causal cut)."""

import pytest

from repro.analysis import ChainInvariantMonitor, capture_run
from repro.baselines.registry import build_store
from repro.core.messages import DepEntry
from repro.storage.version import VersionVector
from repro.workload import WorkloadRunner, workload

FAST = dict(clients=2, duration=0.3, warmup=0.1, records=10, servers_per_site=3)


def run_monitored(store, *, duration=0.3):
    spec = workload("B", record_count=10)
    WorkloadRunner(
        store, spec, n_clients=2, duration=duration, warmup=0.1,
        record_history=False,
    ).run()


class TestCleanRuns:
    def test_e1_style_chainreaction_run_holds_all_invariants(self):
        capture = capture_run("chainreaction", seed=42, check_invariants=True, **FAST)
        report = capture.invariant_report
        assert report.clean, report.format()
        assert report.applies_checked > 0
        assert report.stability_checks > 0
        assert report.gets_checked > 0
        assert report.keys_checked > 0
        assert "all hold" in report.format()

    def test_plain_chain_replication_run_holds_prefix(self):
        capture = capture_run("chain", seed=42, check_invariants=True, **FAST)
        report = capture.invariant_report
        assert report.clean, report.format()
        assert report.applies_checked > 0

    def test_monitor_attaches_once(self):
        store = build_store("chainreaction", sites=("dc0",), servers_per_site=3,
                            chain_length=3, seed=42)
        monitor = ChainInvariantMonitor(store).attach()
        with pytest.raises(RuntimeError):
            monitor.attach()


class TestBrokenRuns:
    def _monitored_store(self, seed=42):
        store = build_store("chainreaction", sites=("dc0",), servers_per_site=3,
                            chain_length=3, seed=seed)
        monitor = ChainInvariantMonitor(store).attach()
        return store, monitor

    def _node_named(self, store, name):
        for node in store.nodes["dc0"]:
            if node.name == name:
                return node
        raise AssertionError(f"no node named {name}")

    def test_out_of_band_apply_breaks_prefix_property(self):
        store, monitor = self._monitored_store()
        run_monitored(store)
        # Forge a write directly onto a non-head replica, bypassing the
        # chain: its applied sequence is no longer a prefix of the head's.
        view = store.managers["dc0"].view
        key = next(iter(monitor._applied[("dc0", view.chain_for("user0")[0])]))
        rogue = self._node_named(store, view.chain_for(key)[-1])
        version = rogue.store.version_of(key).increment("rogue")
        rogue.store.apply(key, "forged", version, store.sim.now)
        report = monitor.report()
        assert not report.clean
        assert any(v.kind == "chain-prefix" and v.key == key
                   for v in report.violations)

    def test_unheld_version_breaks_stability_grounding(self):
        store, monitor = self._monitored_store()
        run_monitored(store)
        view = store.managers["dc0"].view
        key = next(iter(monitor._applied[("dc0", view.chain_for("user0")[0])]))
        node = self._node_named(store, view.chain_for(key)[0])
        # Declare stable a version strictly above anything the node holds.
        ghost = node.store.version_of(key).increment("ghost")
        node.stability.record(key, ghost)
        report = monitor.report()
        assert any(v.kind == "stability-grounding" and v.key == key
                   for v in report.violations)

    def test_causal_cut_violation_detected(self):
        store, monitor = self._monitored_store()
        session = store.session("dc0", "probe")
        # The session has observed version {w:2}; a later get serving the
        # older {w:1} hands the application a state outside its causal past.
        observed = VersionVector({"w": 2})
        session._deps["k"] = DepEntry(version=observed, index=0)
        stale = VersionVector({"w": 1})
        session._note_observed(
            "k", {"version": stale, "value": "old", "stable": False, "index": 0}
        )
        assert any(v.kind == "causal-cut" and v.key == "k"
                   for v in monitor.violations)

    def test_dominating_get_is_not_a_violation(self):
        store, monitor = self._monitored_store()
        session = store.session("dc0", "probe")
        session._deps["k"] = DepEntry(version=VersionVector({"w": 1}), index=0)
        session._note_observed(
            "k",
            {"version": VersionVector({"w": 2}), "value": "new",
             "stable": False, "index": 0},
        )
        assert monitor.violations == []
        assert monitor.gets_checked == 1


class TestReportFormatting:
    def test_violation_format(self):
        from repro.analysis import InvariantViolation

        violation = InvariantViolation(
            kind="chain-prefix", node="dc0:s2", key="user3", detail="gap"
        )
        assert violation.format() == "[chain-prefix] node=dc0:s2 key=user3: gap"

    def test_report_format_lists_violations(self):
        from repro.analysis import InvariantReport, InvariantViolation

        report = InvariantReport(
            violations=[
                InvariantViolation(kind="causal-cut", node="s", key="k", detail="d")
            ],
            applies_checked=1,
            stability_checks=2,
            gets_checked=3,
            keys_checked=4,
        )
        assert not report.clean
        assert "1 VIOLATION(S)" in report.format()
        assert "[causal-cut]" in report.format()
