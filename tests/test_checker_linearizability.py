"""Unit tests for the per-key linearizability checker."""

import pytest

from repro.checker import GET, PUT, History, check_linearizability, check_linearizable_key
from repro.checker.history import Operation
from repro.errors import CheckerError
from repro.storage import VersionVector


def op(session, kind, key, value, t0, t1):
    return Operation(session, kind, key, value, VersionVector(), t0, t1)


class TestLinearizableHistories:
    def test_empty(self):
        assert check_linearizable_key([]) is True

    def test_sequential_write_then_read(self):
        ops = [
            op("w", PUT, "k", "a", 0.0, 1.0),
            op("r", GET, "k", "a", 2.0, 3.0),
        ]
        assert check_linearizable_key(ops) is True

    def test_read_of_initial_value(self):
        ops = [op("r", GET, "k", None, 0.0, 1.0)]
        assert check_linearizable_key(ops, initial_value=None) is True

    def test_concurrent_read_may_see_either_side_of_write(self):
        # read overlaps the write: both old and new values linearize
        for observed in ("old", "new"):
            ops = [
                op("w", PUT, "k", "new", 1.0, 3.0),
                op("r", GET, "k", observed, 0.0, 4.0),
            ]
            assert check_linearizable_key(ops, initial_value="old") is True

    def test_interleaved_writers(self):
        ops = [
            op("w1", PUT, "k", "a", 0.0, 1.0),
            op("w2", PUT, "k", "b", 2.0, 3.0),
            op("r", GET, "k", "b", 4.0, 5.0),
        ]
        assert check_linearizable_key(ops) is True


class TestNonLinearizableHistories:
    def test_stale_read_after_write_completed(self):
        ops = [
            op("w", PUT, "k", "new", 0.0, 1.0),
            op("r", GET, "k", "old", 2.0, 3.0),
        ]
        assert check_linearizable_key(ops, initial_value="old") is False

    def test_read_of_never_written_value(self):
        ops = [
            op("w", PUT, "k", "a", 0.0, 1.0),
            op("r", GET, "k", "ghost", 2.0, 3.0),
        ]
        assert check_linearizable_key(ops) is False

    def test_new_old_inversion_between_two_readers(self):
        """r1 sees the new value and completes before r2 starts, yet r2
        sees the old value — the classic linearizability violation."""
        ops = [
            op("w", PUT, "k", "new", 0.0, 10.0),
            op("r1", GET, "k", "new", 1.0, 2.0),
            op("r2", GET, "k", "old", 3.0, 4.0),
        ]
        assert check_linearizable_key(ops, initial_value="old") is False


class TestInputValidation:
    def test_duplicate_write_values_rejected(self):
        ops = [
            op("w1", PUT, "k", "same", 0.0, 1.0),
            op("w2", PUT, "k", "same", 2.0, 3.0),
        ]
        with pytest.raises(CheckerError):
            check_linearizable_key(ops)

    def test_multi_key_history_rejected(self):
        ops = [
            op("w", PUT, "a", "x", 0.0, 1.0),
            op("w", PUT, "b", "y", 2.0, 3.0),
        ]
        with pytest.raises(CheckerError):
            check_linearizable_key(ops)


class TestWholeHistoryWrapper:
    def test_checks_keys_independently(self):
        h = History()
        h.add("w", PUT, "good", "a", VersionVector(), 0.0, 1.0)
        h.add("r", GET, "good", "a", VersionVector(), 2.0, 3.0)
        h.add("w", PUT, "bad", "new", VersionVector(), 4.0, 5.0)
        h.add("r", GET, "bad", "stale", VersionVector(), 6.0, 7.0)
        failures = check_linearizability(h, initial_values={"bad": "stale0"})
        assert failures == ["bad"]

    def test_all_clean(self):
        h = History()
        h.add("w", PUT, "k", "a", VersionVector(), 0.0, 1.0)
        h.add("r", GET, "k", "a", VersionVector(), 2.0, 3.0)
        assert check_linearizability(h) == []
