"""Tests for the client retry policy: determinism, bounds, deadlines."""

import random

import pytest

from repro.baselines.common import BaselineConfig
from repro.core.config import ChainReactionConfig
from repro.core.retry import RetryPolicy
from repro.errors import ConfigError


class TestSchedule:
    def test_same_seed_same_schedule(self):
        policy = RetryPolicy(max_attempts=8)
        first = policy.schedule(random.Random(99))
        second = policy.schedule(random.Random(99))
        assert first == second

    def test_different_seed_different_schedule(self):
        policy = RetryPolicy(max_attempts=8, jitter=0.1)
        assert policy.schedule(random.Random(1)) != policy.schedule(random.Random(2))

    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=6, base_backoff=0.02, backoff_multiplier=2.0,
            max_backoff=0.5, jitter=0.0,
        )
        assert policy.schedule(random.Random(0)) == [0.02, 0.04, 0.08, 0.16, 0.32]

    def test_backoff_capped_before_jitter(self):
        policy = RetryPolicy(
            max_attempts=12, base_backoff=0.02, backoff_multiplier=2.0,
            max_backoff=0.5, jitter=0.1,
        )
        for delay in policy.schedule(random.Random(5)):
            assert delay <= 0.5 * 1.1

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(
            max_attempts=2, base_backoff=0.1, backoff_multiplier=1.0,
            max_backoff=1.0, jitter=0.25,
        )
        rng = random.Random(3)
        for _ in range(200):
            delay = policy.backoff(0, rng)
            assert 0.1 * 0.75 <= delay <= 0.1 * 1.25


class TestDeadline:
    def test_disabled_by_default(self):
        policy = RetryPolicy()
        assert policy.deadline == 0.0
        assert not policy.out_of_time(start=0.0, now=1e9)

    def test_deadline_cuts_off(self):
        policy = RetryPolicy(deadline=1.0)
        assert not policy.out_of_time(start=5.0, now=5.9)
        assert policy.out_of_time(start=5.0, now=6.0)


class TestFromConfig:
    def test_chainreaction_config_knobs_carry_over(self):
        config = ChainReactionConfig(
            seed=1, max_retries=7, client_retry_backoff=0.05,
            backoff_multiplier=3.0, max_backoff=0.9, backoff_jitter=0.2,
            op_deadline=2.5,
        )
        policy = RetryPolicy.from_config(config)
        assert policy.max_attempts == 7
        assert policy.base_backoff == 0.05
        assert policy.backoff_multiplier == 3.0
        assert policy.max_backoff == 0.9
        assert policy.jitter == 0.2
        assert policy.deadline == 2.5

    def test_baseline_config_supported(self):
        policy = RetryPolicy.from_config(BaselineConfig(seed=1))
        assert policy.max_attempts == BaselineConfig(seed=1).max_retries


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"max_backoff": 0.0},
            {"backoff_multiplier": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
            {"deadline": -1.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)
