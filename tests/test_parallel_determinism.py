"""Cross-shard determinism: workers=1 vs workers=N must be bit-identical.

The acceptance criterion of the parallel engine: sharding one logical
experiment over any number of worker processes may change *wall-clock*
behaviour only. Every run here asserts the full ``Network.send`` trace
digest (time | src | dst | type | size per send, per shard, merged in
site order) and the merged ``NetworkStats`` counters are equal to the
single-process arm — plain and under a fault campaign whose partition
spans a shard boundary.

Runs are cached per (campaign, workers): each pairwise test reuses the
same ParallelRunResult rather than re-simulating.
"""

import functools

import pytest

from repro.sim.shard import ExperimentSpec, FaultEvent, ShardedSimulator
from repro.workload.ycsb import WorkloadSpec

SITES = ("dc0", "dc1", "dc2", "dc3")

FAULT_CAMPAIGN = (
    # Crash a chain head mid-measurement, partition across a shard
    # boundary, then heal and recover before the drain.
    FaultEvent(0.30, "crash", site="dc1", node="s1"),
    FaultEvent(0.40, "partition", site="dc0", site_b="dc2"),
    FaultEvent(0.65, "heal"),
    FaultEvent(0.75, "recover", site="dc1", node="s1"),
)


def make_spec(faults=()) -> ExperimentSpec:
    workload = WorkloadSpec(
        "parallel-determinism",
        read_proportion=0.6,
        update_proportion=0.4,
        insert_proportion=0.0,
        record_count=50,
        distribution="zipfian",
        value_size=32,
    )
    return ExperimentSpec(
        workload=workload,
        protocol="chainreaction",
        sites=SITES,
        servers_per_site=3,
        chain_length=3,
        ack_k=2,
        seed=7,
        n_clients=6,
        duration=0.5,
        warmup=0.15,
        drain=0.45,
        faults=tuple(faults),
    )


@functools.lru_cache(maxsize=None)
def run_once(faulted: bool, workers: int):
    spec = make_spec(FAULT_CAMPAIGN if faulted else ())
    return ShardedSimulator(spec, workers=workers).run()


@pytest.mark.parametrize("faulted", [False, True], ids=["plain", "faults"])
@pytest.mark.parametrize("workers", [2, 4])
class TestWorkerCountInvariance:
    def test_trace_digest_identical(self, faulted, workers):
        base = run_once(faulted, 1)
        parallel = run_once(faulted, workers)
        assert parallel.workers == workers
        assert parallel.trace_digest == base.trace_digest

    def test_network_stats_identical(self, faulted, workers):
        base = run_once(faulted, 1)
        parallel = run_once(faulted, workers)
        assert parallel.stats == base.stats

    def test_outcome_counters_identical(self, faulted, workers):
        base = run_once(faulted, 1)
        parallel = run_once(faulted, workers)
        assert parallel.ops_completed == base.ops_completed
        assert parallel.errors == base.errors
        assert parallel.events_processed == base.events_processed
        assert parallel.envelopes_exchanged == base.envelopes_exchanged
        assert parallel.rounds == base.rounds

    def test_per_site_digests_identical(self, faulted, workers):
        base = run_once(faulted, 1)
        parallel = run_once(faulted, workers)
        for site in SITES:
            assert (
                parallel.per_site[site].digest == base.per_site[site].digest
            ), f"shard {site} diverged"


class TestRunShape:
    """Sanity on the baseline runs the invariance tests compare against."""

    def test_plain_run_does_work(self):
        result = run_once(False, 1)
        assert result.ops_completed > 0
        assert result.rounds > 0
        assert result.envelopes_exchanged > 0  # geo traffic crossed shards
        assert result.n_clients == 6

    def test_fault_campaign_drops_messages(self):
        plain = run_once(False, 1)
        faulted = run_once(True, 1)
        assert faulted.stats.messages_dropped > plain.stats.messages_dropped
        assert faulted.trace_digest != plain.trace_digest

    def test_odd_worker_count_also_identical(self):
        # 3 workers over 4 shards: uneven round-robin assignment.
        base = run_once(False, 1)
        assert run_once(False, 3).trace_digest == base.trace_digest
