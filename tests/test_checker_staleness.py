"""Tests for the staleness analyzer."""

from repro.checker import GET, PUT, History, analyze_staleness
from repro.storage import VersionVector


def vv(**entries):
    return VersionVector(entries)


def history(*ops):
    h = History()
    for session, op, key, version, t0, t1 in ops:
        h.add(session, op, key, "v", version, t0, t1)
    return h


class TestAnalyzeStaleness:
    def test_empty_history(self):
        report = analyze_staleness(History())
        assert report.reads == 0
        assert report.fresh_fraction == 1.0

    def test_fresh_read_counts_fresh(self):
        h = history(
            ("w", PUT, "k", vv(dc0=1), 0.0, 1.0),
            ("r", GET, "k", vv(dc0=1), 2.0, 3.0),
        )
        report = analyze_staleness(h)
        assert report.reads == 1
        assert report.fresh_reads == 1
        assert report.version_lag.max == 0.0

    def test_stale_read_counts_missed_writes(self):
        h = history(
            ("w", PUT, "k", vv(dc0=1), 0.0, 1.0),
            ("w", PUT, "k", vv(dc0=2), 1.0, 2.0),
            ("r", GET, "k", vv(), 5.0, 6.0),  # saw neither
        )
        report = analyze_staleness(h)
        assert report.fresh_reads == 0
        assert report.version_lag.max == 2.0
        # newest missed write completed at t=2, read invoked at t=5
        assert report.time_lag.max == 3.0

    def test_partially_stale_read(self):
        h = history(
            ("w", PUT, "k", vv(dc0=1), 0.0, 1.0),
            ("w", PUT, "k", vv(dc0=2), 1.0, 2.0),
            ("r", GET, "k", vv(dc0=1), 5.0, 6.0),  # missed only the second
        )
        report = analyze_staleness(h)
        assert report.version_lag.max == 1.0

    def test_concurrent_write_not_counted(self):
        """A write still in flight at read invocation imposes no freshness
        obligation."""
        h = history(
            ("w", PUT, "k", vv(dc0=1), 0.0, 10.0),
            ("r", GET, "k", vv(), 5.0, 6.0),
        )
        report = analyze_staleness(h)
        assert report.fresh_reads == 1

    def test_newer_than_any_write_is_fresh(self):
        """Reads may see versions from writes outside the history (preload)."""
        h = history(
            ("r", GET, "k", vv(preload=1), 0.0, 1.0),
        )
        assert analyze_staleness(h).fresh_fraction == 1.0

    def test_summary_fields(self):
        h = history(
            ("w", PUT, "k", vv(dc0=1), 0.0, 1.0),
            ("r", GET, "k", vv(dc0=1), 2.0, 3.0),
        )
        summary = analyze_staleness(h).summary()
        assert set(summary) == {
            "reads",
            "fresh_fraction",
            "version_lag_p50",
            "version_lag_p99",
            "time_lag_p50_ms",
            "time_lag_p99_ms",
        }


class TestOnLiveProtocols:
    def test_chainreaction_mostly_fresh_at_low_load(self):
        from repro.baselines import build_store
        from repro.workload import WorkloadRunner, workload

        store = build_store(
            "chainreaction", servers_per_site=4, chain_length=3, seed=23,
            overrides={"service_time": 0.0},
        )
        spec = workload("A", record_count=20, value_size=16)
        result = WorkloadRunner(store, spec, n_clients=4, duration=0.4, warmup=0.1).run()
        report = analyze_staleness(result.history)
        assert report.reads > 50
        # prefix reads may trail the newest write briefly; the bulk is fresh
        assert report.fresh_fraction > 0.8
