"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


class TestScheduling:
    def test_starts_at_time_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_runs_callback_at_delay(self, sim):
        fired = []
        sim.schedule(1.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.5]

    def test_schedule_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(2.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [2.0]

    def test_callback_arguments_passed(self, sim):
        got = []
        sim.schedule(0.1, lambda a, b: got.append((a, b)), 1, "x")
        sim.run()
        assert got == [(1, "x")]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_scheduling_in_the_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_call_soon_runs_at_current_instant(self, sim):
        times = []
        sim.schedule(1.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
        sim.run()
        assert times == [1.0]


class TestOrdering:
    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(3.0, lambda: order.append(3))
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(2.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2, 3]

    def test_equal_times_fire_fifo(self, sim):
        order = []
        for i in range(10):
            sim.schedule(1.0, order.append, i)
        sim.run()
        assert order == list(range(10))

    def test_nested_scheduling_preserves_order(self, sim):
        order = []

        def outer():
            order.append("outer")
            sim.schedule(0.0, lambda: order.append("inner"))

        sim.schedule(1.0, outer)
        sim.schedule(1.0, lambda: order.append("sibling"))
        sim.run()
        assert order == ["outer", "sibling", "inner"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_cancelled_events_not_counted_processed(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle.cancel()
        sim.run()
        assert sim.events_processed == 1

    def test_pending_events_excludes_cancelled(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending_events() == 1


class TestRun:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0

    def test_run_until_resumable(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        sim.run()
        assert fired == [1, 5]

    def test_run_advances_clock_to_until_even_when_idle(self, sim):
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_returns_final_time(self, sim):
        sim.schedule(3.0, lambda: None)
        assert sim.run() == 3.0

    def test_max_events_guards_livelock(self, sim):
        def reschedule():
            sim.schedule(0.0, reschedule)

        sim.schedule(0.0, reschedule)
        with pytest.raises(SimulationError, match="livelock"):
            sim.run(max_events=1000)

    def test_run_is_not_reentrant(self, sim):
        errors = []

        def nested():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, nested)
        sim.run()
        assert len(errors) == 1

    def test_step_executes_single_event(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]
        assert sim.step() is True
        assert sim.step() is False

    def test_empty_run_is_noop(self, sim):
        assert sim.run() == 0.0
