"""Geo-replication tests: visibility, conflicts, global stability, causality."""

import pytest

from helpers import make_geo_store, run_op

from repro.net import wan_latency
from repro.storage import VersionVector


class TestRemoteVisibility:
    def test_write_becomes_visible_remotely(self):
        store = make_geo_store()
        a = store.session("dc0")
        b = store.session("dc1")
        run_op(store, a.put("k", "hello"))
        store.run(until=1.0)
        assert run_op(store, b.get("k")).value == "hello"

    def test_visibility_latency_tracks_wan(self):
        store = make_geo_store()
        a = store.session("dc0")
        run_op(store, a.put("k", "v"))
        store.run(until=2.0)
        samples = store.protocol_stats()["visibility_samples"]
        assert len(samples) == 1
        assert 0.8 * store.config.wan_median < samples[0] < 4 * store.config.wan_median

    def test_local_write_latency_unaffected_by_wan(self):
        store = make_geo_store()
        a = store.session("dc0")
        fut = a.put("k", "v")
        store.run(until=1.0)
        latency = fut.resolved_at
        assert latency < store.config.wan_median / 2

    def test_remote_update_applied_via_chain(self):
        store = make_geo_store()
        a = store.session("dc0")
        run_op(store, a.put("k", "v"))
        store.run(until=2.0)
        view = store.managers["dc1"].view
        for name in view.chain_for("k"):
            node = next(n for n in store.nodes["dc1"] if n.name == name)
            assert node.store.get("k").value == "v"


class TestGlobalStability:
    def test_write_becomes_globally_stable(self):
        store = make_geo_store()
        a = store.session("dc0")
        run_op(store, a.put("k", "v"))
        store.run(until=2.0)
        samples = store.protocol_stats()["global_stability_samples"]
        assert len(samples) == 1
        # at least one WAN round trip
        assert samples[0] > 1.5 * store.config.wan_median

    def test_nodes_learn_global_stability(self):
        store = make_geo_store()
        a = store.session("dc0")
        version = run_op(store, a.put("k", "v")).version
        store.run(until=2.0)
        for site in store.sites:
            view = store.managers[site].view
            for name in view.chain_for("k"):
                node = next(n for n in store.nodes[site] if n.name == name)
                assert node.global_stability.is_stable("k", version)

    def test_client_prunes_entry_only_after_global_stability(self):
        store = make_geo_store()
        a = store.session("dc0")
        run_op(store, a.put("k", "v"))
        # DC-stable quickly, but not yet globally:
        store.run(until=store.sim.now + 0.005)
        run_op(store, a.get("k"))
        assert "k" in a.dependency_table()
        # After the WAN round trip it is globally stable:
        store.run(until=store.sim.now + 0.5)
        run_op(store, a.get("k"))
        assert a.dependency_table() == {}


class TestConflicts:
    def test_concurrent_writes_converge_to_same_value(self):
        store = make_geo_store()
        a = store.session("dc0")
        b = store.session("dc1")
        fa = a.put("k", "from-dc0")
        fb = b.put("k", "from-dc1")
        store.run(until=3.0)
        assert fa.done() and fb.done()
        assert store.converged("k")
        ra = run_op(store, a.get("k"))
        rb = run_op(store, b.get("k"))
        assert ra.value == rb.value
        assert ra.version == rb.version == VersionVector({"dc0": 1, "dc1": 1})

    def test_conflict_count_recorded(self):
        store = make_geo_store()
        a = store.session("dc0")
        b = store.session("dc1")
        a.put("k", "x")
        b.put("k", "y")
        store.run(until=3.0)
        assert store.protocol_stats()["conflicts_resolved"] >= 1

    def test_custom_resolver_merges_values(self):
        from repro.core import ChainReactionConfig, ChainReactionStore
        from repro.storage import MergingResolver

        config = ChainReactionConfig(
            sites=("dc0", "dc1"), servers_per_site=4, chain_length=3,
            ack_k=2, seed=7, service_time=0.0,
        )
        store = ChainReactionStore(
            config, resolver=MergingResolver(lambda x, y: sorted(set(x) | set(y)))
        )
        a = store.session("dc0")
        b = store.session("dc1")
        a.put("cart", ["apples"])
        b.put("cart", ["bread"])
        store.run(until=3.0)
        result = run_op(store, a.get("cart"))
        assert result.value == ["apples", "bread"]


class TestCausalDelivery:
    def _relay_setup(self, geo_causal_delivery):
        store = make_geo_store(
            n_sites=3, geo_causal_delivery=geo_causal_delivery, ack_k=2
        )
        # Asymmetric triangle: the direct dc0→dc2 path is far slower than
        # dc0→dc1→dc2, so transitive dependencies can be overtaken.
        store.network.set_link("dc0", "dc2", wan_latency(0.200))
        store.network.set_link("dc0", "dc1", wan_latency(0.005))
        store.network.set_link("dc1", "dc2", wan_latency(0.005))
        return store

    def _run_relay_round(self, store):
        w = store.session("dc0")
        m = store.session("dc1")
        r = store.session("dc2")
        run_op(store, w.put("a", "new"))
        # Wait for a to reach dc1 and be readable there.
        for _ in range(100):
            if run_op(store, m.get("a")).value == "new":
                break
            store.run(until=store.sim.now + 0.005)
        run_op(store, m.put("b", "after-a"))
        # Give b time to cross the fast link but not a the slow one.
        store.run(until=store.sim.now + 0.05)
        return run_op(store, r.get("b")), run_op(store, r.get("a"))

    def test_causal_delivery_orders_transitive_updates(self):
        store = self._relay_setup(geo_causal_delivery=True)
        got_b, got_a = self._run_relay_round(store)
        if got_b.value == "after-a":
            assert got_a.value == "new", "b visible before its dependency a"

    def test_ablation_apply_on_arrival_reorders(self):
        store = self._relay_setup(geo_causal_delivery=False)
        got_b, got_a = self._run_relay_round(store)
        assert got_b.value == "after-a"
        assert got_a.value is None, "expected the anomaly: b visible, a not"
