"""Unit and property tests for consistent hashing and chain placement."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster import HashRing, chain_positions
from repro.errors import ClusterError

SERVERS = [f"s{i}" for i in range(6)]


@pytest.fixture
def ring():
    return HashRing(SERVERS, virtual_nodes=32)


class TestConstruction:
    def test_rejects_duplicates(self):
        with pytest.raises(ClusterError):
            HashRing(["a", "a"])

    def test_rejects_bad_virtual_nodes(self):
        with pytest.raises(ClusterError):
            HashRing(["a"], virtual_nodes=0)

    def test_servers_preserved(self, ring):
        assert set(ring.servers) == set(SERVERS)
        assert len(ring) == 6


class TestChains:
    def test_chain_has_requested_length(self, ring):
        assert len(ring.chain_for("key1", 3)) == 3

    def test_chain_members_distinct(self, ring):
        for i in range(50):
            chain = ring.chain_for(f"key{i}", 3)
            assert len(set(chain)) == 3

    def test_chain_deterministic(self, ring):
        assert ring.chain_for("key1", 3) == ring.chain_for("key1", 3)

    def test_chain_clamped_to_ring_size(self):
        ring = HashRing(["a", "b"])
        assert len(ring.chain_for("k", 5)) == 2

    def test_shorter_chain_is_prefix_of_longer(self, ring):
        for i in range(20):
            key = f"key{i}"
            assert ring.chain_for(key, 2) == ring.chain_for(key, 3)[:2]

    def test_head_for(self, ring):
        assert ring.head_for("key1") == ring.chain_for("key1", 3)[0]

    def test_empty_ring_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ClusterError):
            ring.without("a").chain_for("k", 1)

    def test_invalid_length_rejected(self, ring):
        with pytest.raises(ClusterError):
            ring.chain_for("k", 0)


class TestMembershipChanges:
    def test_without_removes_server(self, ring):
        smaller = ring.without("s0")
        assert "s0" not in smaller.servers
        assert len(smaller) == 5

    def test_without_unknown_rejected(self, ring):
        with pytest.raises(ClusterError):
            ring.without("ghost")

    def test_with_server_adds(self, ring):
        bigger = ring.with_server("s6")
        assert "s6" in bigger.servers

    def test_with_existing_rejected(self, ring):
        with pytest.raises(ClusterError):
            ring.with_server("s0")

    def test_surviving_members_keep_relative_order(self, ring):
        """Removing a server never reorders the remaining chain members —
        the property chain repair relies on."""
        smaller = ring.without("s0")
        for i in range(50):
            key = f"key{i}"
            old = [s for s in ring.chain_for(key, 3) if s != "s0"]
            new = smaller.chain_for(key, 3)
            assert new[: len(old)] == old

    def test_removal_moves_bounded_fraction_of_keys(self, ring):
        smaller = ring.without("s0")
        keys = [f"key{i}" for i in range(300)]
        moved = sum(
            1
            for k in keys
            if "s0" not in ring.chain_for(k, 3)
            and ring.chain_for(k, 3) != smaller.chain_for(k, 3)
        )
        # Chains not involving the removed server mostly stay put.
        assert moved < 30


class TestBalance:
    def test_load_roughly_balanced(self, ring):
        keys = [f"key{i}" for i in range(1200)]
        counts = ring.load_map(keys, 3)
        expected = 1200 * 3 / 6
        for server, count in counts.items():
            assert 0.5 * expected < count < 1.6 * expected, counts


class TestChainPositions:
    def test_index_found(self):
        assert chain_positions(["a", "b", "c"], "b") == 1

    def test_absent_returns_none(self):
        assert chain_positions(["a", "b"], "z") is None


class TestProperties:
    @given(st.text(min_size=1, max_size=20))
    def test_every_key_gets_a_valid_chain(self, key):
        ring = HashRing(SERVERS, virtual_nodes=8)
        chain = ring.chain_for(key, 3)
        assert len(chain) == 3
        assert set(chain) <= set(SERVERS)
        assert len(set(chain)) == 3
