"""Model-based (stateful) testing of the replicated store.

Hypothesis drives a random interleaving of realistically-versioned
writes against several replicas that each receive the writes in a
different order (some delayed, some dropped-then-retried), checking the
store's core contract continuously:

- a replica's version per key never regresses,
- any two replicas that have received the same set of writes hold
  identical records (convergence),
- the surviving value is always the max-stamp write among those applied.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule
from hypothesis import strategies as st

from repro.storage import VersionedStore, VersionVector, stamp_of

KEYS = ["k1", "k2"]
DCS = ["dc0", "dc1"]
N_REPLICAS = 3


class StoreModel(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.replicas = [VersionedStore() for _ in range(N_REPLICAS)]
        #: per (key, dc): the serialisation point's current vector
        self.heads = {}
        #: every write ever issued: (key, value, version, stamp)
        self.issued = []
        #: per replica: indices of writes applied so far
        self.applied = [set() for _ in range(N_REPLICAS)]
        self.counter = 0

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------
    @rule(key=st.sampled_from(KEYS), dc=st.sampled_from(DCS))
    def issue_write(self, key, dc):
        """A new write at (key, dc)'s serialisation point (monotone)."""
        previous = self.heads.get((key, dc), VersionVector())
        # The head may have merged the other DC's writes meanwhile:
        other = "dc1" if dc == "dc0" else "dc0"
        other_head = self.heads.get((key, other), VersionVector())
        base = previous.merge(other_head) if self.counter % 3 == 0 else previous
        version = base.increment(dc)
        self.heads[(key, dc)] = version
        self.counter += 1
        self.issued.append((key, f"v{self.counter}", version, stamp_of(version)))

    @precondition(lambda self: self.issued)
    @rule(replica=st.integers(0, N_REPLICAS - 1), data=st.data())
    def deliver_write(self, replica, data):
        """Deliver any not-yet-applied write to one replica (any order)."""
        pending = [i for i in range(len(self.issued)) if i not in self.applied[replica]]
        if not pending:
            return
        index = data.draw(st.sampled_from(pending))
        key, value, version, stamp = self.issued[index]
        self.replicas[replica].apply(key, value, version, 0.0, stamp)
        self.applied[replica].add(index)

    @precondition(lambda self: self.issued)
    @rule(replica=st.integers(0, N_REPLICAS - 1), data=st.data())
    def redeliver_duplicate(self, replica, data):
        """Duplicates must be harmless."""
        done = sorted(self.applied[replica])
        if not done:
            return
        index = data.draw(st.sampled_from(done))
        key, value, version, stamp = self.issued[index]
        before = self.replicas[replica].checksum_state()
        self.replicas[replica].apply(key, value, version, 0.0, stamp)
        assert self.replicas[replica].checksum_state() == before

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    @invariant()
    def versions_never_regress(self):
        for replica, applied in zip(self.replicas, self.applied):
            for key in KEYS:
                current = replica.version_of(key)
                for index in applied:
                    k, _v, version, _s = self.issued[index]
                    if k == key:
                        assert current.dominates(version), (key, current, version)

    @invariant()
    def equal_write_sets_imply_equal_state(self):
        for i in range(N_REPLICAS):
            for j in range(i + 1, N_REPLICAS):
                if self.applied[i] == self.applied[j]:
                    assert (
                        self.replicas[i].checksum_state()
                        == self.replicas[j].checksum_state()
                    )

    @invariant()
    def value_is_max_stamp_of_applied(self):
        for replica, applied in zip(self.replicas, self.applied):
            for key in KEYS:
                writes = [self.issued[i] for i in applied if self.issued[i][0] == key]
                if not writes:
                    continue
                expected_value = max(writes, key=lambda w: w[3])[1]
                record = replica.get_record(key)
                assert record is not None
                assert record.value == expected_value, (key, record.value, expected_value)


StoreModelTest = StoreModel.TestCase
StoreModelTest.settings = settings(max_examples=60, stateful_step_count=30, deadline=None)
