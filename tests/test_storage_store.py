"""Unit and property tests for the convergent versioned store."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.storage import TOMBSTONE, LWWResolver, VersionedStore, VersionVector


def vv(**entries):
    return VersionVector(entries)


class TestApply:
    def test_first_write_applies(self):
        store = VersionedStore()
        result = store.apply("k", "v1", vv(dc0=1))
        assert result.applied
        assert store.get("k").value == "v1"

    def test_dominating_write_replaces(self):
        store = VersionedStore()
        store.apply("k", "v1", vv(dc0=1))
        result = store.apply("k", "v2", vv(dc0=2))
        assert result.applied
        assert store.get("k").value == "v2"

    def test_dominated_write_ignored(self):
        store = VersionedStore()
        store.apply("k", "v2", vv(dc0=2))
        result = store.apply("k", "v1", vv(dc0=1))
        assert not result.applied
        assert store.get("k").value == "v2"
        assert store.writes_ignored == 1

    def test_duplicate_write_ignored(self):
        store = VersionedStore()
        store.apply("k", "v1", vv(dc0=1))
        result = store.apply("k", "v1", vv(dc0=1))
        assert not result.applied

    def test_concurrent_writes_resolved_convergently(self):
        a, b = VersionedStore(), VersionedStore()
        a.apply("k", "from0", vv(dc0=1))
        a.apply("k", "from1", vv(dc1=1))
        b.apply("k", "from1", vv(dc1=1))
        b.apply("k", "from0", vv(dc0=1))
        assert a.get("k").value == b.get("k").value
        assert a.get("k").version == b.get("k").version == vv(dc0=1, dc1=1)
        assert a.conflicts_resolved == 1

    def test_merged_version_dominates_both_inputs(self):
        store = VersionedStore()
        store.apply("k", "a", vv(dc0=1))
        result = store.apply("k", "b", vv(dc1=1))
        assert result.was_conflict
        assert result.record.version.dominates(vv(dc0=1))
        assert result.record.version.dominates(vv(dc1=1))

    def test_version_of_unknown_key_is_zero(self):
        assert VersionedStore().version_of("nope").is_zero()


class TestTombstones:
    def test_delete_hides_value(self):
        store = VersionedStore()
        store.apply("k", "v", vv(dc0=1))
        store.delete("k", vv(dc0=2))
        assert store.get("k") is None
        assert "k" not in store

    def test_tombstone_retains_version(self):
        store = VersionedStore()
        store.apply("k", "v", vv(dc0=1))
        store.delete("k", vv(dc0=2))
        assert store.get_record("k").version == vv(dc0=2)
        assert store.get_record("k").is_deleted

    def test_stale_write_does_not_resurrect(self):
        store = VersionedStore()
        store.delete("k", vv(dc0=2))
        store.apply("k", "old", vv(dc0=1))
        assert store.get("k") is None

    def test_newer_write_overrides_tombstone(self):
        store = VersionedStore()
        store.delete("k", vv(dc0=1))
        store.apply("k", "new", vv(dc0=2))
        assert store.get("k").value == "new"

    def test_len_excludes_tombstones(self):
        store = VersionedStore()
        store.apply("a", 1, vv(dc0=1))
        store.apply("b", 2, vv(dc0=1))
        store.delete("a", vv(dc0=2))
        assert len(store) == 1
        assert list(store.keys()) == ["b"]


class TestAntiEntropy:
    def test_digest_covers_tombstones(self):
        store = VersionedStore()
        store.apply("a", 1, vv(dc0=1))
        store.delete("a", vv(dc0=2))
        assert store.digest() == {"a": vv(dc0=2)}

    def test_records_newer_than_finds_missing(self):
        ahead, behind = VersionedStore(), VersionedStore()
        ahead.apply("a", 1, vv(dc0=1))
        ahead.apply("b", 2, vv(dc0=1))
        behind.apply("a", 1, vv(dc0=1))
        missing = ahead.records_newer_than(behind.digest())
        assert [r.key for r in missing] == ["b"]

    def test_records_newer_than_finds_stale(self):
        ahead, behind = VersionedStore(), VersionedStore()
        ahead.apply("a", 2, vv(dc0=2))
        behind.apply("a", 1, vv(dc0=1))
        assert [r.key for r in ahead.records_newer_than(behind.digest())] == ["a"]

    def test_nothing_missing_when_equal(self):
        a = VersionedStore()
        a.apply("a", 1, vv(dc0=1))
        assert a.records_newer_than(a.digest()) == []

    def test_clear_wipes_state(self):
        store = VersionedStore()
        store.apply("a", 1, vv(dc0=1))
        store.clear()
        assert len(store) == 0


# Hypothesis: a set of *realistically versioned* writes applied in any
# order converges. Realistic means what the protocols guarantee: each
# datacenter assigns its per-key counter exactly once per write (a
# single serialisation point per key per DC), possibly reflecting some
# prefix of the other DC's writes it has already merged. Without that
# discipline a write could collide with the pointwise merge of two
# concurrent writes, which no protocol execution produces.
@st.composite
def write_sets(draw):
    counters = {("k1", "dc0"): 0, ("k1", "dc1"): 0, ("k2", "dc0"): 0, ("k2", "dc1"): 0}
    # Each (key, DC) pair is a serialisation point whose assigned vectors
    # only grow — heads/owners never forget what they have merged.
    state = {}
    writes = []
    for i in range(draw(st.integers(min_value=1, max_value=6))):
        key = draw(st.sampled_from(["k1", "k2"]))
        dc = draw(st.sampled_from(["dc0", "dc1"]))
        other = "dc1" if dc == "dc0" else "dc0"
        counters[(key, dc)] += 1
        seen_other = draw(st.integers(min_value=0, max_value=counters[(key, other)]))
        previous = state.get((key, dc), VersionVector())
        version = previous.merge(VersionVector({other: seen_other})).increment(dc)
        state[(key, dc)] = version
        writes.append((key, i, version.entries()))
    return writes


class TestConvergenceProperty:
    @given(write_sets(), st.randoms())
    def test_apply_order_does_not_matter(self, writes, rnd):
        ordered = VersionedStore()
        shuffled_store = VersionedStore()
        shuffled = list(writes)
        rnd.shuffle(shuffled)
        for key, value, entries in writes:
            ordered.apply(key, value, VersionVector(entries))
        for key, value, entries in shuffled:
            shuffled_store.apply(key, value, VersionVector(entries))
        assert ordered.checksum_state() == shuffled_store.checksum_state()

    @given(write_sets())
    def test_all_permutations_converge_small(self, writes):
        states = set()
        for perm in itertools.islice(itertools.permutations(writes), 24):
            store = VersionedStore()
            for key, value, entries in perm:
                store.apply(key, value, VersionVector(entries))
            states.add(store.checksum_state())
        assert len(states) == 1
