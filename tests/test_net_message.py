"""Unit tests for message wire-size accounting."""

import dataclasses
from typing import Any, ClassVar

from repro.net import Message, estimate_size
from repro.net.message import WIRE_HEADER_BYTES
from repro.storage import VersionVector


@dataclasses.dataclass(frozen=True)
class Ping(Message):
    type_name: ClassVar[str] = "ping"
    seq: int = 0
    note: str = ""


class TestEstimateSize:
    def test_scalars(self):
        assert estimate_size(True) == 1
        assert estimate_size(None) == 1
        assert estimate_size(7) == 8
        assert estimate_size(3.14) == 8

    def test_strings_and_bytes_are_length_prefixed(self):
        assert estimate_size("abc") == 4 + 3
        assert estimate_size(b"abcd") == 4 + 4
        assert estimate_size("") == 4

    def test_containers_recurse(self):
        assert estimate_size([1, 2]) == 4 + 16
        assert estimate_size((1, "ab")) == 4 + 8 + 6
        assert estimate_size({"k": 1}) == 4 + (4 + 1) + 8
        assert estimate_size(set()) == 4

    def test_object_with_size_bytes_delegates(self):
        vv = VersionVector({"dc0": 3})
        assert estimate_size(vv) == vv.size_bytes()

    def test_dataclass_sums_fields(self):
        @dataclasses.dataclass
        class Pair:
            a: int
            b: str

        assert estimate_size(Pair(1, "xy")) == 8 + 6

    def test_unknown_type_charged_pointer(self):
        assert estimate_size(object()) == 8


class TestMessageSize:
    def test_message_includes_header(self):
        msg = Ping(seq=1, note="hi")
        assert msg.size_bytes() == WIRE_HEADER_BYTES + 8 + (4 + 2)

    def test_bigger_payload_bigger_message(self):
        assert Ping(note="x" * 100).size_bytes() > Ping(note="x").size_bytes()
