"""Tests for convergence checking against live deployments."""

from helpers import make_geo_store, make_store, run_op

from repro.checker import await_convergence, convergence_report


class TestConvergenceReport:
    def test_converged_store(self):
        store = make_store()
        s = store.session()
        run_op(store, s.put("k", "v"))
        store.run(until=2.0)
        report = convergence_report(store, ["k"])
        assert report.converged
        assert report.checked == 1
        assert "converged" in str(report)

    def test_divergence_detected_mid_flight(self):
        store = make_store(ack_k=1)
        s = store.session()
        fut = s.put("k", "v")
        # Advance only until the head's ack: the tail has not applied yet.
        run_op(store, fut)
        report = convergence_report(store, ["k"])
        assert not report.converged
        assert report.divergent == ["k"]
        assert "divergent" in str(report)

    def test_unwritten_key_counts_as_converged(self):
        store = make_store()
        report = convergence_report(store, ["ghost"])
        assert report.converged


class TestAwaitConvergence:
    def test_waits_for_replication(self):
        store = make_store(ack_k=1)
        s = store.session()
        fut = s.put("k", "v")
        run_op(store, fut)  # acked but tail still pending
        report = await_convergence(store, ["k"], max_extra_time=2.0, step=0.1)
        assert report.converged

    def test_geo_convergence(self):
        store = make_geo_store()
        a = store.session("dc0")
        b = store.session("dc1")
        a.put("k", "x")
        b.put("k", "y")
        report = await_convergence(store, ["k"], max_extra_time=5.0)
        assert report.converged

    def test_gives_up_within_budget(self):
        store = make_store(ack_k=1)
        s = store.session()
        fut = s.put("k", "v")
        run_op(store, fut)
        # Freeze chain propagation so convergence cannot complete.
        store.network.add_filter(lambda _s, _d, msg: msg.type_name != "chain-put")
        report = await_convergence(store, ["k"], max_extra_time=0.5, step=0.1)
        assert not report.converged
