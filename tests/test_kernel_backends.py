"""Two-backend kernel contract: selection, ownership recycling, parity.

The mypyc-compiled kernel (``repro._compiled``, built by
``scripts/build_kernel.py``) is only admissible because it is
*bit-identical* to the pure interpreter on the same source
(:mod:`repro.kernelcore`). This suite pins that contract:

- **selection** — ``auto``/``pure``/``compiled`` resolution, the
  ``REPRO_KERNEL`` environment override, hard failure (never a silent
  fallback) when ``compiled`` is requested without a build, config and
  spec validation, and the ``CAP_COMPILED_KERNEL`` capability;
- **ownership recycling** — the explicit ``release()`` flag that
  replaced the ``sys.getrefcount`` freelist heuristic (refcounts differ
  between backends, so the old trick could never be compiled);
- **parity** — golden trace, twice-run sanitize, the ``--workers 2``
  sharded digest, and a fault campaign, each fingerprinted under both
  backends and asserted equal. Compiled arms skip cleanly when no
  build is present (this container has no mypyc); the CI
  ``compiled-smoke`` job builds one and runs them for real.
"""

import hashlib

import pytest

from repro.api import CAP_COMPILED_KERNEL
from repro.errors import ConfigError
from repro.sim.backend import (
    ENV_VAR,
    activate_kernel,
    active_kernel,
    compiled_available,
    new_simulator,
    resolve_kernel,
)
from repro.sim.kernel import Simulator

requires_build = pytest.mark.skipif(
    not compiled_available(),
    reason="mypyc build absent (pip install -e .[compiled]; python scripts/build_kernel.py)",
)

BACKENDS = [
    pytest.param("pure", id="pure"),
    pytest.param("compiled", id="compiled", marks=requires_build),
]


@pytest.fixture(autouse=True)
def _restore_backend():
    """Every test leaves the process on the backend it found."""
    prior = active_kernel()
    yield
    activate_kernel(prior)


def _under(backend, fn):
    prior = active_kernel()
    activate_kernel(backend)
    try:
        return fn()
    finally:
        activate_kernel(prior)


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------
class TestResolution:
    def test_default_and_auto_resolve_by_availability(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        expected = "compiled" if compiled_available() else "pure"
        assert resolve_kernel(None) == expected
        assert resolve_kernel("auto") == expected

    def test_env_var_steers_auto(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "pure")
        assert resolve_kernel("auto") == "pure"

    def test_env_var_requesting_missing_compiled_is_hard_error(self, monkeypatch):
        if compiled_available():
            pytest.skip("build present; env request succeeds here")
        monkeypatch.setenv(ENV_VAR, "compiled")
        with pytest.raises(ConfigError):
            resolve_kernel("auto")

    def test_invalid_env_var_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "turbo")
        with pytest.raises(ConfigError, match="REPRO_KERNEL"):
            resolve_kernel("auto")

    def test_explicit_choice_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "compiled")
        assert resolve_kernel("pure") == "pure"

    def test_invalid_choice_rejected(self):
        with pytest.raises(ConfigError, match="kernel"):
            resolve_kernel("fast")

    def test_compiled_without_build_is_hard_error(self):
        if compiled_available():
            pytest.skip("build present; explicit request succeeds here")
        with pytest.raises(ConfigError, match="build_kernel"):
            resolve_kernel("compiled")

    def test_config_validates_kernel(self):
        from repro.core.config import ChainReactionConfig

        assert ChainReactionConfig(kernel="pure").kernel == "pure"
        with pytest.raises(ConfigError, match="kernel"):
            ChainReactionConfig(kernel="fast")

    def test_spec_validates_kernel(self):
        from repro.sim.shard import ExperimentSpec
        from repro.workload import workload

        with pytest.raises(ConfigError, match="kernel"):
            ExperimentSpec(
                workload=workload("B", record_count=10),
                sites=("dc0",),
                kernel="fast",
            )

    def test_spec_default_kernel_is_pure(self):
        # A spec is a value shipped to worker processes; its meaning must
        # not depend on what happens to be installed where it lands.
        from repro.sim.shard import ExperimentSpec
        from repro.workload import workload

        spec = ExperimentSpec(
            workload=workload("B", record_count=10), sites=("dc0",)
        )
        assert spec.kernel == "pure"

    def test_activation_reports_and_switches(self):
        assert activate_kernel("pure") == "pure"
        assert active_kernel() == "pure"
        assert isinstance(new_simulator(), Simulator)

    @requires_build
    def test_compiled_activation_switches_simulator_factory(self):
        from repro._compiled import eventcore as compiled_eventcore

        def probe():
            return type(new_simulator())

        assert _under("compiled", probe) is compiled_eventcore.Simulator
        assert _under("pure", probe) is Simulator

    def test_cap_absent_on_pure_backend(self):
        from repro.baselines import build_store

        store = build_store(
            "chainreaction", sites=("dc0",), seed=1, overrides={"kernel": "pure"}
        )
        assert CAP_COMPILED_KERNEL not in store.capabilities

    @requires_build
    def test_cap_present_on_compiled_backend(self):
        from repro.baselines import build_store

        def probe():
            store = build_store(
                "chainreaction",
                sites=("dc0",),
                seed=1,
                overrides={"kernel": "compiled"},
            )
            return CAP_COMPILED_KERNEL in store.capabilities

        assert _under("compiled", probe)


# ----------------------------------------------------------------------
# ownership-flag recycling (replaces the sys.getrefcount heuristic)
# ----------------------------------------------------------------------
class TestOwnershipRecycling:
    def test_owned_handle_never_recycled(self):
        sim = Simulator()
        ev = sim.schedule(0.1, lambda: None)
        sim.run()
        # The holder still owns the handle, so the kernel must not hand
        # the same object to a future schedule() call.
        assert sim.event_pool_stats()["free"] == 0
        ev2 = sim.schedule(0.2, lambda: None)
        assert ev2 is not ev

    def test_released_handle_recycled_after_fire(self):
        sim = Simulator()
        ev = sim.schedule(0.1, lambda: None)
        ev.release()
        sim.run()
        assert sim.event_pool_stats()["free"] == 1
        ev2 = sim.schedule(0.2, lambda: None)
        assert ev2 is ev  # the freelist handed the same object back
        assert ev2.owned
        assert sim.event_pool_stats()["reused"] == 1

    def test_late_release_after_fire_is_harmless_noop(self):
        sim = Simulator()
        ev = sim.schedule(0.1, lambda: None)
        sim.run()
        ev.release()  # fired while owned: recycling moment already passed
        assert sim.event_pool_stats()["free"] == 0
        assert sim.schedule(0.2, lambda: None) is not ev

    def test_cancel_then_release_recycles(self):
        # The with_timeout pattern: the done-callback cancels its timer
        # and releases the handle; the cancelled entry is recycled when
        # the heap reaches it.
        sim = Simulator()
        fired = []
        ev = sim.schedule(0.1, fired.append, 1)
        sim.schedule(0.2, fired.append, 2).release()
        ev.cancel()
        ev.release()
        sim.run()
        assert fired == [2]
        assert sim.event_pool_stats()["free"] == 2

    def test_recycled_handle_carries_no_stale_callback(self):
        # Refurbishment must clear callback/args so a recycled handle
        # can never re-fire its previous assignment.
        sim = Simulator()
        fired = []
        ev = sim.schedule(0.1, fired.append, "old")
        ev.release()
        sim.run()
        ev2 = sim.schedule(0.1, fired.append, "new")
        assert ev2 is ev
        sim.run()
        assert fired == ["old", "new"]

    def test_post_path_allocates_no_handles(self):
        # post() is the handle-free hot path: it enqueues a bare tuple,
        # so no ScheduledEvent is created and the freelist is untouched.
        sim = Simulator()
        for i in range(5):
            sim.post(0.01 * (i + 1), lambda: None)
        sim.run()
        assert sim.events_processed == 5
        stats = sim.event_pool_stats()
        assert stats["free"] == 0
        assert stats["reused"] == 0

    def test_no_refcount_inspection_in_kernel_source(self):
        # The heuristic this flag replaced must stay gone: refcounts
        # differ between interpreted and compiled frames, so any
        # behaviour keyed on them diverges between backends.
        import inspect

        from repro.kernelcore import eventcore

        assert "getrefcount" not in inspect.getsource(eventcore)


# ----------------------------------------------------------------------
# cross-backend parity
# ----------------------------------------------------------------------
def _fingerprint_golden_trace():
    from repro.baselines import build_store
    from repro.workload import WorkloadRunner, workload

    store = build_store(
        "chainreaction",
        sites=("dc0", "dc1"),
        servers_per_site=4,
        chain_length=3,
        seed=1234,
    )
    spec = workload("B", record_count=25, value_size=32)
    result = WorkloadRunner(store, spec, n_clients=3, duration=0.5, warmup=0.1).run()
    return (
        store.sim.events_processed,
        store.network.stats.messages_sent,
        store.network.stats.bytes_sent,
        tuple(sorted(result.summary_row().items())),
    )


def _fingerprint_sanitize_twice():
    from repro.analysis.sanitize import capture_run

    kwargs = dict(seed=42, clients=4, duration=0.4, records=25)
    first = capture_run("chainreaction", **kwargs)
    second = capture_run("chainreaction", **kwargs)
    assert first.trace == second.trace  # twice-run: bit-identical
    digest = hashlib.sha256(repr(first.trace).encode()).hexdigest()
    return (digest, first.events_processed, first.ops_completed)


def _fingerprint_sharded_digest():
    from repro.analysis import sanitize_sharded

    report = sanitize_sharded(
        "chainreaction", seed=42, clients=4, duration=0.3, records=25, workers=2
    )
    assert report.clean, report.format()
    return (report.digests[0], report.events_processed[0], report.ops_completed[0])


def _fingerprint_fault_campaign():
    from repro.faults import campaign, run_campaign

    result = run_campaign(campaign("crash-head"), seed=7, capture_trace=True)
    digest = hashlib.sha256(repr(result.trace).encode()).hexdigest()
    return (
        digest,
        result.events_processed,
        result.ops_completed,
        result.causal_violations,
        repr(result.outcomes),
    )


PARITY_SCENARIOS = {
    "golden-trace": _fingerprint_golden_trace,
    "sanitize-twice-run": _fingerprint_sanitize_twice,
    "sharded-workers-2": _fingerprint_sharded_digest,
    "fault-campaign": _fingerprint_fault_campaign,
}


class TestBackendParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_golden_trace_matches_recorded_pins(self, backend):
        # Both backends must reproduce the snapshot recorded on the seed
        # code — not merely agree with each other.
        from test_golden_trace import (
            GOLDEN_BYTES_SENT,
            GOLDEN_EVENTS_PROCESSED,
            GOLDEN_MESSAGES_SENT,
        )

        events, messages, bytes_sent, _ = _under(backend, _fingerprint_golden_trace)
        assert (events, messages, bytes_sent) == (
            GOLDEN_EVENTS_PROCESSED,
            GOLDEN_MESSAGES_SENT,
            GOLDEN_BYTES_SENT,
        )

    @requires_build
    @pytest.mark.parametrize("scenario", sorted(PARITY_SCENARIOS))
    def test_pure_and_compiled_byte_identical(self, scenario):
        run = PARITY_SCENARIOS[scenario]
        pure = _under("pure", run)
        compiled = _under("compiled", run)
        assert pure == compiled, (
            f"{scenario}: backends diverged — the compiled kernel changed "
            "simulation behaviour, not just its speed"
        )

    @requires_build
    def test_hlc_arithmetic_identical(self):
        from repro._compiled import hlccore as compiled_hlc
        from repro.kernelcore import hlccore as pure_hlc

        physical = logical = 0
        c_physical = c_logical = 0
        for wall in range(0, 3000, 7):
            physical, logical = pure_hlc.clock_tick(physical, logical, wall)
            c_physical, c_logical = compiled_hlc.clock_tick(
                c_physical, c_logical, wall
            )
            physical, logical = pure_hlc.clock_observe(
                physical, logical, physical + (wall & 15), wall & 3, wall
            )
            c_physical, c_logical = compiled_hlc.clock_observe(
                c_physical, c_logical, c_physical + (wall & 15), wall & 3, wall
            )
        assert (physical, logical) == (c_physical, c_logical)

    @requires_build
    def test_version_vector_arithmetic_identical(self):
        from repro._compiled import vvcore as compiled_vv
        from repro.kernelcore import vvcore as pure_vv

        a = (("dc0", 3), ("dc1", 1))
        b = (("dc0", 2), ("dc2", 5))
        for core in (pure_vv, compiled_vv):
            assert core.merge_entries(a, b) == (("dc0", 3), ("dc1", 1), ("dc2", 5))
            assert core.merge_entries(a, a) == a
            assert core.dominates_entries(core.merge_entries(a, b), a)
            assert core.increment_entries(a, "dc2") == (
                ("dc0", 3),
                ("dc1", 1),
                ("dc2", 1),
            )
        assert pure_vv.entries_size_bytes(a) == compiled_vv.entries_size_bytes(a)
