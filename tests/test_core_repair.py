"""Chain repair and recovery tests."""

import pytest

from helpers import make_store, run_op

from repro.storage import VersionVector


def preload_and_write(store, n_keys=30):
    s = store.session()
    versions = {}
    for i in range(n_keys):
        versions[f"key{i}"] = run_op(store, s.put(f"key{i}", f"value{i}")).version
    store.run(until=store.sim.now + 1.0)  # stabilise everything
    return s, versions


class TestCrashRepair:
    def test_data_survives_single_crash(self):
        store = make_store(servers_per_site=5)
        s, _ = preload_and_write(store)
        store.servers()[0].crash()
        store.run(until=store.sim.now + 2.0)  # detect + repair
        for i in range(30):
            assert run_op(store, s.get(f"key{i}"), extra=2.0).value == f"value{i}"

    def test_new_chain_members_receive_state(self):
        store = make_store(servers_per_site=5)
        _, versions = preload_and_write(store)
        victim = store.servers()[0]
        victim.crash()
        store.run(until=store.sim.now + 2.0)
        view = store.managers["dc0"].view
        assert victim.name not in view.servers
        for key, version in versions.items():
            for name in view.chain_for(key):
                node = next(n for n in store.nodes["dc0"] if n.name == name)
                record = node.store.get(key)
                assert record is not None, (key, name)
                assert record.version.dominates(version)

    def test_repaired_records_become_stable(self):
        store = make_store(servers_per_site=5)
        _, versions = preload_and_write(store)
        store.servers()[0].crash()
        store.run(until=store.sim.now + 2.0)
        view = store.managers["dc0"].view
        for key, version in versions.items():
            tail_name = view.chain_for(key)[-1]
            tail = next(n for n in store.nodes["dc0"] if n.name == tail_name)
            assert tail.stability.is_stable(key, version), key

    def test_sync_window_is_bounded(self):
        store = make_store(servers_per_site=5)
        preload_and_write(store, n_keys=10)
        store.servers()[0].crash()
        store.run(until=store.sim.now + 2.0)
        assert all(not n.syncing for n in store.servers() if not n.crashed)

    def test_writes_continue_after_repair(self):
        store = make_store(servers_per_site=5)
        s, _ = preload_and_write(store, n_keys=5)
        store.servers()[0].crash()
        store.run(until=store.sim.now + 2.0)
        result = run_op(store, s.put("fresh", "post-crash"), extra=2.0)
        assert result.version.get("dc0") >= 1
        assert run_op(store, s.get("fresh"), extra=2.0).value == "post-crash"

    def test_acked_writes_survive_ack_node_crash(self):
        """With k=2 a write acked to the client exists on 2 servers; losing
        either one must not lose the write."""
        store = make_store(servers_per_site=5, ack_k=2)
        s = store.session()
        version = run_op(store, s.put("precious", "data")).version
        head_name = store.managers["dc0"].view.chain_for("precious")[0]
        head = next(n for n in store.nodes["dc0"] if n.name == head_name)
        head.crash()
        store.run(until=store.sim.now + 2.0)
        result = run_op(store, s.get("precious"), extra=2.0)
        assert result.value == "data"
        assert result.version.dominates(version)


class TestRecovery:
    def test_recovered_server_rejoins_view(self):
        store = make_store(servers_per_site=4)
        preload_and_write(store, n_keys=5)
        victim = store.servers()[0]
        victim.crash()
        store.run(until=store.sim.now + 1.5)
        assert victim.name not in store.managers["dc0"].view.servers
        victim.recover()
        store.run(until=store.sim.now + 1.5)
        assert victim.name in store.managers["dc0"].view.servers

    def test_rejoined_server_catches_up_on_data(self):
        store = make_store(servers_per_site=4)
        s, _ = preload_and_write(store, n_keys=10)
        victim = store.servers()[0]
        victim.crash()
        store.run(until=store.sim.now + 1.5)
        # Writes happen while the victim is down.
        run_op(store, s.put("key0", "updated"), extra=2.0)
        victim.recover()
        store.run(until=store.sim.now + 2.0)
        view = store.managers["dc0"].view
        if victim.name in view.chain_for("key0"):
            assert victim.store.get("key0").value == "updated"

    def test_reads_correct_after_full_cycle(self):
        store = make_store(servers_per_site=4)
        s, _ = preload_and_write(store, n_keys=10)
        victim = store.servers()[0]
        victim.crash()
        store.run(until=store.sim.now + 1.5)
        victim.recover()
        store.run(until=store.sim.now + 2.0)
        for i in range(10):
            assert run_op(store, s.get(f"key{i}"), extra=2.0).value == f"value{i}"


class TestConsistencyThroughFailure:
    def test_no_causal_anomalies_across_crash(self):
        """Sessions running through a crash+repair cycle stay causally clean
        (modulo unstable versions that die with the crashed server)."""
        from repro.checker import History, check_causal
        from repro.checker.history import GET, PUT

        store = make_store(servers_per_site=5, ack_k=2)
        history = History()
        sessions = [store.session() for _ in range(4)]

        def client_loop(session, n):
            for i in range(n):
                key = f"key{i % 7}"
                t0 = store.sim.now
                try:
                    res = yield session.put(key, f"{session.session_id}:{i}")
                    history.add(session.session_id, PUT, key, f"{session.session_id}:{i}", res.version, t0, store.sim.now)
                except Exception:
                    pass
                t0 = store.sim.now
                try:
                    res = yield session.get(key)
                    history.add(session.session_id, GET, key, res.value, res.version, t0, store.sim.now)
                except Exception:
                    pass
                yield 0.01

        from repro.sim import spawn

        for session in sessions:
            spawn(store.sim, client_loop(session, 80))
        store.sim.schedule_at(0.4, store.servers()[0].crash)
        store.run(until=6.0)
        violations = check_causal(history)
        assert len(violations) <= 3, [str(v) for v in violations[:3]]
