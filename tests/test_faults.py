"""Tests for the fault-campaign subsystem: specs, engine, determinism."""

import pytest

from repro.baselines.registry import build_store
from repro.errors import ConfigError
from repro.faults import (
    CAMPAIGNS,
    CampaignSpec,
    FaultSpec,
    campaign,
    resolve_server,
    run_campaign,
    sanitize_campaign,
)

#: Shrunk deployment/workload so engine tests stay fast. The duration
#: still covers every built-in recovery time (latest: t=1.6), so the
#: "after" phase sees recovered traffic.
_SMALL = dict(clients=4, records=25, duration=1.8, warmup=0.2)


def small(name, **extra):
    return campaign(name).with_updates(**{**_SMALL, **extra})


class TestFaultSpec:
    def test_crash_spec_roundtrip(self):
        spec = FaultSpec(kind="crash", at=0.5, target="dc0:s1", until=1.0)
        assert spec.until == 1.0
        assert not spec.wipe_storage

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"kind": "meteor", "at": 0.5, "target": "dc0:s1"}, "unknown fault kind"),
            ({"kind": "crash", "at": 0.0, "target": "dc0:s1"}, "must be positive"),
            ({"kind": "crash", "at": 0.5, "target": ""}, "non-empty"),
            ({"kind": "crash", "at": 0.5, "target": "dc0:s1", "until": 0.4}, "must follow"),
            ({"kind": "partition", "at": 0.5, "target": "dc0"}, "a|b"),
            ({"kind": "slow-link", "at": 0.5, "target": "dc0"}, "a~b"),
            (
                {"kind": "slow-link", "at": 0.5, "target": "a~b", "factor": 0.0},
                "factor",
            ),
        ],
    )
    def test_invalid_specs_rejected(self, kwargs, match):
        with pytest.raises(ConfigError):
            FaultSpec(**kwargs)


class TestCampaignSpec:
    def test_requires_events(self):
        with pytest.raises(ConfigError, match="no faults"):
            CampaignSpec(name="empty", description="", events=())

    def test_fault_must_precede_stop(self):
        with pytest.raises(ConfigError, match="after"):
            CampaignSpec(
                name="late", description="",
                events=(FaultSpec(kind="crash", at=99.0, target="dc0:s0"),),
            )

    def test_fault_window_spans_events(self):
        spec = CampaignSpec(
            name="w", description="",
            events=(
                FaultSpec(kind="crash", at=0.5, target="dc0:s0", until=1.0),
                FaultSpec(kind="crash", at=0.8, target="dc0:s1", until=1.6),
            ),
        )
        assert spec.fault_window() == (0.5, 1.6)

    def test_open_ended_fault_extends_to_stop(self):
        spec = CampaignSpec(
            name="w", description="",
            events=(FaultSpec(kind="crash", at=0.5, target="dc0:s0"),),
            warmup=0.2, duration=2.0,
        )
        assert spec.fault_window() == (0.5, 2.2)

    def test_builtin_campaigns_valid(self):
        assert set(CAMPAIGNS)  # non-empty
        for name, spec in CAMPAIGNS.items():
            assert spec.name == name
            assert spec.description

    def test_unknown_campaign_lists_choices(self):
        with pytest.raises(ConfigError, match="crash-head"):
            campaign("nope")


class TestResolveServer:
    @pytest.fixture(scope="class")
    def store(self):
        return build_store(
            "chainreaction", sites=("dc0", "dc1"), servers_per_site=4,
            chain_length=3, ack_k=2, seed=7,
        )

    def test_named_server(self, store):
        node = resolve_server(store, "dc0:s2")
        assert node.name == "s2"

    def test_chain_positions(self, store):
        chain = store.managers["dc0"].view.chain_for("user00000000")
        assert resolve_server(store, "head-of:user00000000").name == chain[0]
        assert resolve_server(store, "mid-of:user00000000").name == chain[1]
        assert resolve_server(store, "tail-of:user00000000").name == chain[-1]

    def test_site_prefixed_position(self, store):
        chain = store.managers["dc1"].view.chain_for("user00000000")
        assert resolve_server(store, "dc1/head-of:user00000000").name == chain[0]

    @pytest.mark.parametrize(
        "selector", ["nowhere:s0", "dc0:s99", "s0", "dc9/head-of:k"]
    )
    def test_bad_selectors_rejected(self, store, selector):
        with pytest.raises(ConfigError):
            resolve_server(store, selector)


class TestEngine:
    def test_crash_head_campaign_clean(self):
        result = run_campaign(small("crash-head"), seed=7)
        assert result.clean, result.format()
        assert result.causal_violations == 0
        assert result.invariant_report is not None
        assert result.invariant_report.clean

    def test_every_op_resolves_to_an_outcome(self):
        result = run_campaign(small("crash-head"), seed=7)
        o = result.outcomes
        assert o.unresolved == 0
        assert o.ok + o.degraded + o.timeouts == o.total
        assert o.total > 0

    def test_phase_accounting_shows_dip_and_recovery(self):
        result = run_campaign(small("crash-head"), seed=7)
        phases = {p.phase: p for p in result.phases}
        assert set(phases) == {"before", "during", "after"}
        assert phases["during"].ops_per_sec < phases["before"].ops_per_sec
        assert phases["after"].ops_per_sec > phases["during"].ops_per_sec

    def test_crash_without_recovery_still_clean(self):
        result = run_campaign(small("crash-mid-norecover"), seed=7)
        assert result.clean, result.format()

    def test_slow_link_campaign_clean(self):
        result = run_campaign(small("slow-link"), seed=7)
        assert result.clean, result.format()
        assert any("slow-link" in line for line in result.injector_log)
        assert any("restore-link" in line for line in result.injector_log)

    def test_report_is_json_shaped(self):
        import json

        result = run_campaign(small("crash-head"), seed=7)
        doc = json.loads(json.dumps(result.to_report()))
        assert doc["campaign"] == "crash-head"
        assert doc["clean"] is True
        assert doc["outcomes"]["unresolved"] == 0


class TestDeterminism:
    def test_same_seed_replays_identical_traces(self):
        report = sanitize_campaign(small("crash-head"), seed=11)
        assert report.divergence is None, report.format()
        assert report.events_processed[0] == report.events_processed[1]
        assert report.clean

    def test_same_seed_same_outcome_counts(self):
        first = run_campaign(small("rolling-crashes"), seed=13)
        second = run_campaign(small("rolling-crashes"), seed=13)
        assert first.outcomes.as_dict() == second.outcomes.as_dict()
        assert first.throughput == second.throughput
