"""Tests for the structured protocol tracer."""

import pytest

from helpers import make_geo_store, make_store, run_op

from repro.sim import Simulator
from repro.trace import TraceEvent, Tracer


class TestTracerUnit:
    def test_records_in_time_order(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.record("a", "cat", "first")
        sim.schedule(1.0, tracer.record, "b", "cat", "second")
        sim.run()
        events = tracer.events()
        assert [e.event for e in events] == ["first", "second"]
        assert events[1].t == 1.0

    def test_filters(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.record("n1", "put", "recv", key="k1")
        tracer.record("n2", "put", "recv", key="k2")
        tracer.record("n1", "geo", "ship", key="k1")
        assert len(tracer.events(key="k1")) == 2
        assert len(tracer.events(category="geo")) == 1
        assert len(tracer.events(actor="n1")) == 2
        assert len(tracer.events(key="k1", category="put")) == 1

    def test_capacity_bounded_with_drop_count(self):
        sim = Simulator()
        tracer = Tracer(sim, capacity=5)
        for i in range(8):
            tracer.record("n", "c", f"e{i}")
        assert len(tracer) == 5
        assert tracer.dropped == 3
        assert tracer.events()[0].event == "e3"

    def test_counts_summary(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.record("n", "put", "recv")
        tracer.record("n", "put", "recv")
        tracer.record("n", "put", "ack")
        assert tracer.counts() == {"put:recv": 2, "put:ack": 1}

    def test_format_renders_fields(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.record("dc0:s1", "put", "apply", key="k", version="VV(dc0:1)")
        line = tracer.format()
        assert "dc0:s1" in line and "key=k" in line and "version=VV(dc0:1)" in line

    def test_clear(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.record("n", "c", "e")
        tracer.clear()
        assert len(tracer) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Tracer(Simulator(), capacity=0)


class TestDeploymentTracing:
    def test_put_lifecycle_traced(self):
        store = make_store(ack_k=2)
        tracer = store.attach_tracer()
        s = store.session()
        run_op(store, s.put("photo", "x"))
        store.run(until=store.sim.now + 0.5)
        events = [e.event for e in tracer.events(key="photo")]
        assert events[0] == "received"
        assert "apply-head" in events
        assert "ack-client" in events
        assert "dc-stable" in events

    def test_geo_lifecycle_traced(self):
        store = make_geo_store()
        tracer = store.attach_tracer()
        s = store.session("dc0")
        run_op(store, s.put("k", "v"))
        store.run(until=store.sim.now + 1.0)
        categories = {e.category for e in tracer.events(key="k")}
        assert "geo" in categories  # shipped and remotely applied
        counts = tracer.counts()
        assert counts.get("geo:ship") == 1
        assert counts.get("geo:remote-apply") == 1
        assert counts.get("stability:global-stable", 0) > 0

    def test_repair_traced(self):
        store = make_store(servers_per_site=4)
        tracer = store.attach_tracer()
        store.servers()[0].crash()
        store.run(until=store.sim.now + 1.5)
        counts = tracer.counts()
        assert counts.get("repair:view-change", 0) >= 3  # each survivor
        assert counts.get("repair:sync-complete", 0) >= 3

    def test_no_tracer_means_no_overhead_or_errors(self):
        store = make_store()
        s = store.session()
        run_op(store, s.put("k", "v"))  # trace() calls are silent no-ops

    def test_dep_wait_traced(self):
        store = make_store(ack_k=1, servers_per_site=6)
        tracer = store.attach_tracer()
        view = store.managers["dc0"].view
        x, y = None, None
        for i in range(200):
            for j in range(200):
                if view.chain_for(f"y{j}")[0] not in view.chain_for(f"x{i}"):
                    x, y = f"x{i}", f"y{j}"
                    break
            if x:
                break
        s = store.session()
        run_op(store, s.put(x, "1"))
        run_op(store, s.put(y, "2"))
        store.run(until=store.sim.now + 0.5)
        assert tracer.counts().get("put:dep-wait", 0) >= 1
