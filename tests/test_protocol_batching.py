"""Protocol batching + metadata GC (PR 4).

Covers the coalescer machinery, the BulkStable cascade, the sealing GC
(floors, monotonicity, re-opening), client dep pruning, the
O(1) waiter counter, the VersionVector merge fast path, the
message-count reduction of a batched run, and the determinism of the
built-in fault campaigns with batching enabled.
"""

from __future__ import annotations

import pytest

from helpers import make_geo_store, make_store, run_op

from repro.core.batching import StabilityCoalescer, UpdateCoalescer
from repro.core.stability import StabilityTracker
from repro.faults import campaign, sanitize_campaign
from repro.net.network import Address
from repro.sim import Simulator
from repro.storage.version import VersionVector, ZERO


def vv(**entries):
    return VersionVector(entries)


BATCH = {"protocol_batching": True, "metadata_gc": True}


class FakeActor:
    """Timer-capable stand-in so coalescers can be tested in isolation."""

    def __init__(self, sim):
        self.sim = sim
        self.sent = []

    def set_timer(self, delay, callback, *args):
        return self.sim.schedule(delay, callback, *args)


class TestCoalescer:
    def test_flush_on_window(self):
        sim = Simulator()
        actor = FakeActor(sim)
        out = []
        c = StabilityCoalescer(actor, 0.01, 128, lambda dst, e: out.append((dst, e)))
        dst = Address("dc0", "s1")
        c.add(dst, "a", vv(dc0=1))
        c.add(dst, "b", vv(dc0=2))
        assert out == [] and c.pending_entries() == 2
        sim.run(until=0.02)
        assert len(out) == 1
        assert out[0][0] == dst
        assert dict(out[0][1]) == {"a": vv(dc0=1), "b": vv(dc0=2)}
        assert c.batches_flushed == 1 and c.entries_enqueued == 2
        assert c.messages_saved() == 1

    def test_same_key_entries_merge(self):
        sim = Simulator()
        actor = FakeActor(sim)
        out = []
        c = StabilityCoalescer(actor, 0.01, 128, lambda dst, e: out.append(e))
        dst = Address("dc0", "s1")
        c.add(dst, "a", vv(dc0=1))
        c.add(dst, "a", vv(dc0=3))
        c.add(dst, "a", vv(dc1=2))
        sim.run(until=0.02)
        assert out == [(("a", vv(dc0=3, dc1=2)),)]

    def test_eager_flush_at_max_entries(self):
        sim = Simulator()
        actor = FakeActor(sim)
        out = []
        c = StabilityCoalescer(actor, 10.0, 3, lambda dst, e: out.append(e))
        dst = Address("dc0", "s1")
        for i in range(3):
            c.add(dst, f"k{i}", vv(dc0=1))
        # max_entries reached: flushed without waiting for the window
        assert len(out) == 1 and len(out[0]) == 3
        assert c.eager_flushes == 1

    def test_update_coalescer_preserves_order_without_dedup(self):
        sim = Simulator()
        actor = FakeActor(sim)
        out = []
        c = UpdateCoalescer(actor, 0.01, 128, lambda dst, u: out.append(u))
        dst = Address("dc1", "geoproxy")
        c.add(dst, "u1")
        c.add(dst, "u2")
        c.add(dst, "u1")
        sim.run(until=0.02)
        assert out == [("u1", "u2", "u1")]

    def test_reset_drops_buffers_and_rearms_cleanly(self):
        sim = Simulator()
        actor = FakeActor(sim)
        out = []
        c = StabilityCoalescer(actor, 0.01, 128, lambda dst, e: out.append(e))
        dst = Address("dc0", "s1")
        c.add(dst, "a", vv(dc0=1))
        c.reset()  # crash: buffered entry and armed timer are pre-crash state
        assert c.pending_entries() == 0
        c.add(dst, "b", vv(dc0=2))  # post-recovery add must re-arm
        sim.run(until=0.05)
        assert out == [(("b", vv(dc0=2)),)]

    def test_per_destination_buffers_flush_separately(self):
        sim = Simulator()
        actor = FakeActor(sim)
        out = []
        c = StabilityCoalescer(actor, 0.01, 128, lambda dst, e: out.append(dst))
        c.add(Address("dc0", "s1"), "a", vv(dc0=1))
        c.add(Address("dc0", "s2"), "a", vv(dc0=1))
        sim.run(until=0.02)
        assert out == [Address("dc0", "s1"), Address("dc0", "s2")]


class TestTrackerSealing:
    def test_pending_waiters_is_counted(self):
        sim = Simulator()
        tracker = StabilityTracker()
        assert tracker.pending_waiters() == 0
        f1 = tracker.wait(sim, "k", vv(dc0=2))
        f2 = tracker.wait(sim, "j", vv(dc0=1))
        assert tracker.pending_waiters() == 2
        tracker.record("k", vv(dc0=2))
        assert tracker.pending_waiters() == 1
        tracker.record("j", vv(dc0=1))
        assert tracker.pending_waiters() == 0
        assert f1.done() and f2.done()

    def test_drop_entry_refuses_waiters_and_missing_keys(self):
        sim = Simulator()
        tracker = StabilityTracker()
        assert not tracker.drop_entry("missing")
        tracker.record("k", vv(dc0=1))
        tracker.wait(sim, "k", vv(dc0=5))
        assert not tracker.drop_entry("k")

    def test_floor_answers_for_sealed_keys(self):
        tracker = StabilityTracker()
        tracker.set_floor(lambda key: vv(dc0=3) if key == "k" else ZERO)
        tracker.record("k", vv(dc0=3))
        assert tracker.drop_entry("k")
        assert tracker.entry_count() == 0
        # the floor keeps answering exactly as the live entry did
        assert tracker.is_stable("k", vv(dc0=3))
        assert not tracker.is_stable("k", vv(dc0=4))
        assert tracker.stable_version("k") == vv(dc0=3)

    def test_record_after_seal_merges_with_floor(self):
        tracker = StabilityTracker()
        tracker.set_floor(lambda key: vv(dc0=3))
        tracker.record("k", vv(dc0=3))
        tracker.drop_entry("k")
        tracker.record("k", vv(dc1=1))  # re-opened: merged with the floor
        assert tracker.stable_version("k") == vv(dc0=3, dc1=1)


class TestMergeFastPath:
    def test_dominating_operand_returned_by_identity(self):
        a = vv(dc0=3, dc1=2)
        b = vv(dc0=1)
        assert a.merge(b) is a
        assert b.merge(a) is a
        assert a.merge(a) is a

    def test_zero_merges_by_identity(self):
        a = vv(dc0=3)
        assert a.merge(ZERO) is a
        assert ZERO.merge(a) is a
        assert ZERO.merge(ZERO) is ZERO

    def test_concurrent_vectors_allocate_the_join(self):
        a = vv(dc0=2)
        b = vv(dc1=3)
        merged = a.merge(b)
        assert merged == vv(dc0=2, dc1=3)
        assert merged is not a and merged is not b


class TestBatchedProtocol:
    def test_batched_run_reduces_stability_messages(self):
        def messages(overrides):
            store = make_geo_store(**overrides)
            session = store.session(session_id="c0")
            for i in range(30):
                run_op(store, session.put(f"k{i % 5}", f"v{i}"))
            store.run(until=store.sim.now + 1.0)
            return store.network.stats

        plain = messages({})
        batched = messages(BATCH)
        plain_stab = plain.count_of("chain-stable")
        batched_stab = batched.count_of("chain-stable", "bulk-stable")
        assert plain_stab > 0
        assert batched.count_of("bulk-stable") > 0
        assert batched_stab < plain_stab
        plain_glob = plain.count_of("global-stable-notice")
        batched_glob = batched.count_of(
            "global-stable-notice", "global-stable-batch"
        )
        assert batched_glob < plain_glob

    def test_batched_writes_are_read_back(self):
        store = make_geo_store(**BATCH)
        session = store.session(session_id="c0")
        run_op(store, session.put("k", "v1"))
        assert run_op(store, session.get("k")).value == "v1"
        run_op(store, session.put("k", "v2"))
        assert run_op(store, session.get("k")).value == "v2"

    def test_remote_site_sees_batched_updates_in_order(self):
        store = make_geo_store(**BATCH)
        writer = store.session(site="dc0", session_id="w")
        for i in range(5):
            run_op(store, writer.put("k", f"v{i}"))
        store.run(until=store.sim.now + 1.0)
        reader = store.session(site="dc1", session_id="r")
        assert run_op(store, reader.get("k")).value == "v4"

    def test_sealing_reclaims_tracker_entries(self):
        store = make_geo_store(**BATCH)
        session = store.session(session_id="c0")
        for i in range(10):
            run_op(store, session.put(f"k{i}", "v"))
        store.run(until=store.sim.now + 2.0)  # global acks + GC ticks
        nodes = store.servers()
        assert sum(n.keys_sealed for n in nodes) > 0
        assert sum(n.global_floor_entries() for n in nodes) > 0
        # sealed keys still answer stability queries through the floor
        for node in store.nodes["dc0"]:
            for key in list(node._stable_records):
                record = node._stable_records[key][0]
                assert node.stability.is_stable(key, record.version)

    def test_sealed_key_reads_report_stable(self):
        store = make_geo_store(**BATCH)
        session = store.session(session_id="c0")
        run_op(store, session.put("k", "v"))
        store.run(until=store.sim.now + 2.0)
        result = run_op(store, session.get("k"))
        assert result.value == "v" and result.stable

    def test_client_dep_table_prunes_on_global_stability(self):
        # accumulate-forever ablation + metadata_gc: entries must still
        # disappear once a read observes global stability
        store = make_geo_store(collapse_deps_on_put=False, **BATCH)
        session = store.session(session_id="c0")
        run_op(store, session.put("k", "v"))
        assert session.metadata_entries() == 1
        store.run(until=store.sim.now + 2.0)
        run_op(store, session.get("k"))
        assert session.metadata_entries() == 0

    def test_metadata_plateau_vs_unbatched(self):
        def final_metadata(overrides):
            store = make_geo_store(**overrides)
            session = store.session(session_id="c0")
            for i in range(40):
                run_op(store, session.put(f"k{i}", "v"))
            store.run(until=store.sim.now + 2.0)
            return sum(n.metadata_entries() for n in store.servers())

        assert final_metadata(BATCH) < final_metadata({})


class TestBatchingFaultCampaigns:
    @pytest.mark.parametrize("name", ["crash-head", "rolling-crashes"])
    def test_campaign_deterministic_with_batching(self, name):
        spec = campaign(name)
        spec = spec.with_updates(
            clients=4, overrides={**(spec.overrides or {}), **BATCH}
        )
        report = sanitize_campaign(spec, seed=7)
        assert report.divergence is None, report.format()
        assert report.clean, report.format()


class TestGoldenDefaultsUnchanged:
    def test_new_knobs_default_off(self):
        from repro.core.config import ChainReactionConfig

        config = ChainReactionConfig()
        assert config.protocol_batching is False
        assert config.metadata_gc is False

    def test_config_validation(self):
        from repro.core.config import ChainReactionConfig
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            ChainReactionConfig(batch_flush_interval=0.0)
        with pytest.raises(ConfigError):
            ChainReactionConfig(batch_max_entries=0)
        with pytest.raises(ConfigError):
            ChainReactionConfig(gc_interval=-1.0)
