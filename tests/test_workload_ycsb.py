"""Unit tests for YCSB workload specifications."""

import random
from collections import Counter

import pytest

from repro.errors import ConfigError
from repro.workload import WORKLOADS, WorkloadSpec, workload


class TestSpecValidation:
    def test_proportions_must_sum_to_one(self):
        with pytest.raises(ConfigError):
            WorkloadSpec("bad", read_proportion=0.5, update_proportion=0.4)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadSpec("bad", 1.0, 0.0, distribution="pareto")

    def test_zero_records_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadSpec("bad", 1.0, 0.0, record_count=0)

    def test_zero_value_size_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadSpec("bad", 1.0, 0.0, value_size=0)


class TestStandardWorkloads:
    def test_all_letters_present(self):
        assert set(WORKLOADS) == {"A", "B", "C", "D"}

    def test_mixes(self):
        assert WORKLOADS["A"].read_proportion == 0.5
        assert WORKLOADS["B"].read_proportion == 0.95
        assert WORKLOADS["C"].read_proportion == 1.0
        assert WORKLOADS["D"].insert_proportion == 0.05
        assert WORKLOADS["D"].distribution == "latest"

    def test_workload_lookup_with_overrides(self):
        spec = workload("A", record_count=42)
        assert spec.record_count == 42
        assert spec.read_proportion == 0.5

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigError):
            workload("Z")


class TestBehaviour:
    def test_key_format_stable(self):
        spec = workload("A")
        assert spec.key(7) == "user00000007"

    def test_choose_op_respects_mix(self):
        rng = random.Random(5)
        spec = workload("B", record_count=10)
        counts = Counter(spec.choose_op(rng) for _ in range(10000))
        assert 0.93 < counts["get"] / 10000 < 0.97
        assert counts["insert"] == 0

    def test_workload_d_inserts(self):
        rng = random.Random(5)
        spec = workload("D", record_count=10)
        counts = Counter(spec.choose_op(rng) for _ in range(10000))
        assert counts["insert"] > 0
        assert counts["update"] == 0

    def test_make_chooser_matches_distribution(self):
        from repro.workload import LatestKeys, ScrambledZipfianKeys

        assert isinstance(workload("A").make_chooser(10), ScrambledZipfianKeys)
        assert isinstance(workload("D").make_chooser(10), LatestKeys)
