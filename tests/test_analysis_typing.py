"""Tests for the typing gate (annotation checker + optional mypy layer)
and the `repro lint` CLI entry point."""

import io

from repro.analysis import check_annotations, run_mypy
from repro.cli import main


class TestAnnotationChecker:
    def test_missing_annotations_reported(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "def f(x, y: int):\n"
            "    return x + y\n"
        )
        violations = check_annotations([path])
        assert len(violations) == 1
        violation = violations[0]
        assert violation.function == "f"
        assert "annotation for 'x'" in violation.missing
        assert "return annotation" in violation.missing
        assert "annotation for 'y'" not in str(violation.missing)
        assert f"{path}:1:" in violation.format()

    def test_fully_annotated_clean(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "def f(x: int, *args: int, flag: bool = False, **kw: int) -> int:\n"
            "    return x\n"
        )
        assert check_annotations([path]) == []

    def test_self_and_cls_exempt(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "class A:\n"
            "    def m(self, x: int) -> int:\n"
            "        return x\n"
            "    @classmethod\n"
            "    def c(cls) -> None:\n"
            "        pass\n"
        )
        assert check_annotations([path]) == []

    def test_exempt_dunders_skipped_but_init_checked(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "class A:\n"
            "    def __init__(self, x):\n"
            "        self.x = x\n"
            "    def __repr__(self):\n"
            "        return 'A'\n"
        )
        violations = check_annotations([path])
        assert [v.function for v in violations] == ["__init__"]

    def test_pragma_exempts_function(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "def f(x):  # repro: lint-ok(typing)\n"
            "    return x\n"
        )
        assert check_annotations([path]) == []

    def test_typed_packages_are_clean(self):
        assert check_annotations() == []


class TestMypyLayer:
    def test_run_mypy_degrades_gracefully(self):
        result = run_mypy()
        # With mypy installed the gate must pass; without it the layer
        # reports a skip, not a failure.
        assert result.clean, result.output
        if not result.available:
            assert "skipped" in result.output


class TestCliLint:
    def test_lint_clean_tree_exits_zero(self):
        out = io.StringIO()
        assert main(["lint"], out=out) == 0
        assert "0 violation(s)" in out.getvalue()

    def test_lint_flags_bad_file(self, tmp_path):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nx = time.time()\n")
        out = io.StringIO()
        assert main(["lint", str(bad)], out=out) == 1
        assert "no-wall-clock" in out.getvalue()

    def test_lint_typing_gate(self):
        out = io.StringIO()
        assert main(["lint", "--typing"], out=out) == 0
        assert "typing gate: 0 missing annotation(s)" in out.getvalue()
