"""Tests for the classic chain-replication baseline."""

import pytest

from helpers import run_op

from repro.baselines import ChainReplicationStore, chain_replication_config
from repro.checker import GET, PUT, History, check_linearizability
from repro.core import ChainReactionConfig
from repro.sim import spawn


def make_chain(**overrides):
    defaults = dict(
        sites=("dc0",), servers_per_site=4, chain_length=3, seed=7, service_time=0.0
    )
    defaults.update(overrides)
    return ChainReplicationStore(ChainReactionConfig(**defaults))


class TestConfiguration:
    def test_config_rewritten_to_classic_mode(self):
        config = chain_replication_config(ChainReactionConfig(chain_length=3, ack_k=1))
        assert config.ack_k == 3
        assert config.allow_prefix_reads is False

    def test_store_name(self):
        assert make_chain().name == "chain"


class TestClassicBehaviour:
    def test_put_acked_by_tail(self):
        store = make_chain()
        s = store.session()
        result = run_op(store, s.put("k", "v"))
        assert result.acked_by == "2"
        assert result.stable

    def test_reads_served_only_by_tail(self):
        store = make_chain()
        s = store.session()
        run_op(store, s.put("k", "v"))
        tail = store.managers["dc0"].view.chain_for("k")[-1]
        for _ in range(15):
            assert run_op(store, s.get("k")).served_by == tail

    def test_dependency_machinery_never_engages(self):
        """Tail acks + tail reads mean every observed version is stable:
        the client table stays empty and no put ever dependency-waits."""
        store = make_chain()
        s = store.session()
        for i in range(10):
            run_op(store, s.put(f"k{i}", i))
            run_op(store, s.get(f"k{i}"))
        assert s.dependency_table() == {}
        assert sum(n.dep_waits for n in store.servers()) == 0


class TestLinearizability:
    def test_concurrent_history_is_linearizable_per_key(self):
        """Drive concurrent readers/writers and check the recorded history
        with the linearizability checker — the guarantee ChainReaction
        relaxes and classic chain replication keeps."""
        store = make_chain()
        history = History()
        sim = store.sim

        def writer(session, n):
            for i in range(n):
                t0 = sim.now
                value = f"{session.session_id}:{i}"
                res = yield session.put("reg", value)
                history.add(session.session_id, PUT, "reg", value, res.version, t0, sim.now)
                yield 0.001

        def reader(session, n):
            for _ in range(n):
                t0 = sim.now
                res = yield session.get("reg")
                history.add(session.session_id, GET, "reg", res.value, res.version, t0, sim.now)
                yield 0.0007

        for i in range(2):
            spawn(sim, writer(store.session(), 15))
        for i in range(3):
            spawn(sim, reader(store.session(), 30))
        store.run(until=5.0)
        assert len(history) > 50
        assert check_linearizability(history, initial_values={"reg": None}) == []
