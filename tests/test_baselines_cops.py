"""Tests for the COPS-like baseline."""

import pytest

from helpers import run_op

from repro.baselines import BaselineConfig, CopsStore
from repro.storage import VersionVector


def make_cops(**overrides):
    defaults = dict(sites=("dc0", "dc1"), servers_per_site=4, seed=7, service_time=0.0)
    defaults.update(overrides)
    return CopsStore(BaselineConfig(**defaults))


class TestPartitioning:
    def test_chain_length_forced_to_one(self):
        store = make_cops()
        assert store.config.chain_length == 1

    def test_exactly_one_owner_per_key_per_site(self):
        store = make_cops()
        s = store.session("dc0")
        run_op(store, s.put("k", "v"))
        holders = [n for n in store.nodes["dc0"] if n.store.get("k") is not None]
        assert len(holders) == 1


class TestBasicOps:
    def test_put_then_get_local(self):
        store = make_cops()
        s = store.session("dc0")
        run_op(store, s.put("k", "v"))
        assert run_op(store, s.get("k")).value == "v"

    def test_remote_visibility(self):
        store = make_cops()
        a = store.session("dc0")
        b = store.session("dc1")
        run_op(store, a.put("k", "v"))
        store.run(until=1.0)
        assert run_op(store, b.get("k")).value == "v"

    def test_delete(self):
        store = make_cops()
        s = store.session("dc0")
        run_op(store, s.put("k", "v"))
        run_op(store, s.delete("k"))
        assert run_op(store, s.get("k")).value is None


class TestContext:
    def test_context_grows_on_reads_and_collapses_on_put(self):
        store = make_cops()
        s = store.session("dc0")
        run_op(store, s.put("a", "1"))
        run_op(store, s.get("a"))
        run_op(store, s.put("b", "2"))
        # put_after semantics: context is now just {b}
        assert list(s._context) == ["b"]

    def test_metadata_bytes_nonzero_after_ops(self):
        store = make_cops()
        s = store.session("dc0")
        run_op(store, s.put("a", "1"))
        assert s.metadata_bytes() > 4


class TestDepChecks:
    def test_remote_write_waits_for_dependency(self):
        """b (which depends on a) must not become visible at the remote DC
        before a, even if a's replication is delayed."""
        store = make_cops()
        # Delay: drop a's remote write once, let everything else through.
        dropped = []

        def drop_first_a(_s, _d, msg):
            if (
                msg.type_name == "cops-remote-write"
                and msg.key == "a"
                and not dropped
            ):
                dropped.append(msg)
                return False
            return True

        store.network.add_filter(drop_first_a)
        writer = store.session("dc0")
        run_op(store, writer.put("a", "1"))
        run_op(store, writer.get("a"))
        run_op(store, writer.put("b", "2"))
        store.run(until=store.sim.now + 0.5)
        reader = store.session("dc1")
        # b's dep-check on a cannot pass: b invisible remotely.
        assert run_op(store, reader.get("b")).value is None
        assert dropped, "filter never engaged"
        # Re-deliver a (simulating retransmission): b becomes visible.
        store.network.clear_filters()
        owner = next(
            n for n in store.nodes["dc1"]
            if n.view.chain_for("a")[0] == n.name
        )
        msg = dropped[0]
        owner.on_cops_remote_write(msg, store.nodes["dc0"][0].address)
        store.run(until=store.sim.now + 1.0)
        assert run_op(store, reader.get("b")).value == "2"

    def test_dep_check_counter_increments(self):
        store = make_cops()
        writer = store.session("dc0")
        run_op(store, writer.put("a", "1"))
        run_op(store, writer.put("b", "2"))  # deps: {a}
        store.run(until=store.sim.now + 1.0)
        assert sum(n.dep_checks for n in store.servers()) >= 1


class TestConvergence:
    def test_concurrent_cross_dc_writes_converge(self):
        store = make_cops()
        a = store.session("dc0")
        b = store.session("dc1")
        a.put("k", "x")
        b.put("k", "y")
        store.run(until=3.0)
        assert store.converged("k")

    def test_visibility_samples_recorded(self):
        store = make_cops()
        s = store.session("dc0")
        run_op(store, s.put("k", "v"))
        store.run(until=1.0)
        assert len(store.protocol_stats()["visibility_samples"]) == 1
