"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--protocol", "mysql"])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "chainreaction"
        assert args.workload == "B"
        assert args.clients == 16


class TestInfo:
    def test_lists_protocols_and_workloads(self):
        code, output = run_cli("info")
        assert code == 0
        assert "chainreaction" in output
        assert "A (50% read)" in output


class TestRun:
    def test_basic_run_prints_summary(self):
        code, output = run_cli(
            "run", "--clients", "4", "--duration", "0.3", "--warmup", "0.1",
            "--records", "20",
        )
        assert code == 0
        assert "throughput (ops/s)" in output
        assert "errors" in output

    def test_run_with_audit_and_staleness(self):
        code, output = run_cli(
            "run", "--clients", "4", "--duration", "0.3", "--warmup", "0.1",
            "--records", "20", "--check", "--staleness",
        )
        assert code == 0
        assert "consistency audit" in output
        assert "causal" in output
        assert "staleness" in output

    def test_run_other_protocol_and_sites(self):
        code, output = run_cli(
            "run", "--protocol", "eventual", "--sites", "dc0", "dc1",
            "--clients", "4", "--duration", "0.3", "--warmup", "0.1",
            "--records", "20",
        )
        assert code == 0
        assert "throughput" in output


class TestConsistency:
    def test_anomaly_table(self):
        code, output = run_cli(
            "consistency", "--protocols", "chainreaction", "eventual",
            "--pairs", "4", "--rounds", "5",
        )
        assert code == 0
        assert "chainreaction" in output
        assert "eventual" in output
        assert "causal" in output


class TestTraceAndDurable:
    def test_trace_prints_timeline(self):
        code, output = run_cli(
            "run", "--clients", "2", "--duration", "0.2", "--warmup", "0.05",
            "--records", "5", "--trace", "user00000001",
        )
        assert code == 0
        assert "trace for key" in output
        assert "apply-head" in output or "(no events)" in output

    def test_durable_flag_accepted_for_chainreaction(self):
        code, output = run_cli(
            "run", "--clients", "2", "--duration", "0.2", "--warmup", "0.05",
            "--records", "5", "--durable",
        )
        assert code == 0

    def test_durable_rejected_for_baselines(self):
        code, output = run_cli("run", "--protocol", "eventual", "--durable")
        assert code == 2
        assert "chainreaction" in output
