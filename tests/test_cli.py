"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--protocol", "mysql"])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "chainreaction"
        assert args.workload == "B"
        assert args.clients == 16


class TestInfo:
    def test_lists_protocols_and_workloads(self):
        code, output = run_cli("info")
        assert code == 0
        assert "chainreaction" in output
        assert "A (50% read)" in output


class TestRun:
    def test_basic_run_prints_summary(self):
        code, output = run_cli(
            "run", "--clients", "4", "--duration", "0.3", "--warmup", "0.1",
            "--records", "20",
        )
        assert code == 0
        assert "throughput (ops/s)" in output
        assert "errors" in output

    def test_run_with_audit_and_staleness(self):
        code, output = run_cli(
            "run", "--clients", "4", "--duration", "0.3", "--warmup", "0.1",
            "--records", "20", "--check", "--staleness",
        )
        assert code == 0
        assert "consistency audit" in output
        assert "causal" in output
        assert "staleness" in output

    def test_run_other_protocol_and_sites(self):
        code, output = run_cli(
            "run", "--protocol", "eventual", "--sites", "dc0", "dc1",
            "--clients", "4", "--duration", "0.3", "--warmup", "0.1",
            "--records", "20",
        )
        assert code == 0
        assert "throughput" in output


class TestConsistency:
    def test_anomaly_table(self):
        code, output = run_cli(
            "consistency", "--protocols", "chainreaction", "eventual",
            "--pairs", "4", "--rounds", "5",
        )
        assert code == 0
        assert "chainreaction" in output
        assert "eventual" in output
        assert "causal" in output


class TestTraceAndDurable:
    def test_trace_prints_timeline(self):
        code, output = run_cli(
            "run", "--clients", "2", "--duration", "0.2", "--warmup", "0.05",
            "--records", "5", "--trace", "user00000001",
        )
        assert code == 0
        assert "trace for key" in output
        assert "apply-head" in output or "(no events)" in output

    def test_durable_flag_accepted_for_chainreaction(self):
        code, output = run_cli(
            "run", "--clients", "2", "--duration", "0.2", "--warmup", "0.05",
            "--records", "5", "--durable",
        )
        assert code == 0

    def test_durable_rejected_for_baselines(self):
        code, output = run_cli("run", "--protocol", "eventual", "--durable")
        assert code == 2
        assert "chainreaction" in output

    def test_trace_rejected_without_capability(self):
        code, output = run_cli(
            "run", "--protocol", "eventual", "--trace", "user00000001",
        )
        assert code == 2
        assert "CAP_TRACING" in output


class TestOutputFlags:
    def test_run_json_format(self):
        code, output = run_cli(
            "run", "--clients", "2", "--duration", "0.2", "--warmup", "0.05",
            "--records", "10", "--format", "json",
        )
        assert code == 0
        # progress line first, then the JSON document
        doc = json.loads(output[output.index("{"):])
        assert doc["protocol"] == "chainreaction"
        assert "throughput_ops_s" in doc

    def test_out_writes_file(self, tmp_path):
        path = tmp_path / "report.json"
        code, output = run_cli(
            "consistency", "--protocols", "chainreaction", "--pairs", "2",
            "--rounds", "3", "--format", "json", "--out", str(path),
        )
        assert code == 0
        assert f"report written to {path}" in output
        doc = json.loads(path.read_text())
        assert doc["protocols"][0]["protocol"] == "chainreaction"
        assert doc["protocols"][0]["causal"] == 0

    def test_info_json(self):
        code, output = run_cli("info", "--format", "json")
        assert code == 0
        doc = json.loads(output)
        assert "chainreaction" in doc["protocols"]


class TestFaults:
    def test_list_campaigns(self):
        code, output = run_cli("faults", "--list")
        assert code == 0
        assert "crash-head" in output
        assert "slow-link" in output

    def test_campaign_required(self):
        code, output = run_cli("faults")
        assert code == 2
        assert "--campaign" in output

    def test_unknown_campaign_raises(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="unknown campaign"):
            run_cli("faults", "--campaign", "meteor-strike")

    def test_crash_head_campaign_clean(self, tmp_path):
        path = tmp_path / "campaign.json"
        code, output = run_cli(
            "faults", "--campaign", "crash-head", "--seed", "7",
            "--clients", "4", "--format", "json", "--out", str(path),
        )
        assert code == 0
        doc = json.loads(path.read_text())
        assert doc["campaign"] == "crash-head"
        assert doc["clean"] is True
        assert doc["outcomes"]["unresolved"] == 0
        assert doc["causal_violations"] == 0
        phases = {p["phase"]: p for p in doc["phases"]}
        assert set(phases) == {"before", "during", "after"}
