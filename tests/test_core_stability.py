"""Unit tests for the DC-stability tracker."""

from repro.core.stability import StabilityTracker
from repro.sim import Simulator
from repro.storage import VersionVector


def vv(**entries):
    return VersionVector(entries)


class TestStabilityTracker:
    def test_initially_only_zero_is_stable(self):
        tracker = StabilityTracker()
        assert tracker.is_stable("k", vv())
        assert not tracker.is_stable("k", vv(dc0=1))

    def test_record_makes_version_stable(self):
        tracker = StabilityTracker()
        tracker.record("k", vv(dc0=2))
        assert tracker.is_stable("k", vv(dc0=1))
        assert tracker.is_stable("k", vv(dc0=2))
        assert not tracker.is_stable("k", vv(dc0=3))

    def test_stability_is_per_key(self):
        tracker = StabilityTracker()
        tracker.record("a", vv(dc0=5))
        assert not tracker.is_stable("b", vv(dc0=1))

    def test_stable_version_merges_monotonically(self):
        tracker = StabilityTracker()
        tracker.record("k", vv(dc0=2))
        tracker.record("k", vv(dc1=3))
        assert tracker.stable_version("k") == vv(dc0=2, dc1=3)
        tracker.record("k", vv(dc0=1))  # older: no regression
        assert tracker.stable_version("k") == vv(dc0=2, dc1=3)

    def test_wait_resolves_immediately_when_stable(self):
        sim = Simulator()
        tracker = StabilityTracker()
        tracker.record("k", vv(dc0=1))
        fut = tracker.wait(sim, "k", vv(dc0=1))
        assert fut.done() and fut.result() is True

    def test_wait_parks_until_recorded(self):
        sim = Simulator()
        tracker = StabilityTracker()
        fut = tracker.wait(sim, "k", vv(dc0=2))
        assert not fut.done()
        tracker.record("k", vv(dc0=1))
        assert not fut.done()
        tracker.record("k", vv(dc0=2))
        assert fut.done()

    def test_waiters_resolved_by_covering_merge(self):
        sim = Simulator()
        tracker = StabilityTracker()
        fut = tracker.wait(sim, "k", vv(dc0=1, dc1=1))
        tracker.record("k", vv(dc0=1))
        tracker.record("k", vv(dc1=1))
        assert fut.done()

    def test_pending_waiters_counted_and_drained(self):
        sim = Simulator()
        tracker = StabilityTracker()
        tracker.wait(sim, "a", vv(dc0=1))
        tracker.wait(sim, "b", vv(dc0=1))
        assert tracker.pending_waiters() == 2
        tracker.record("a", vv(dc0=1))
        assert tracker.pending_waiters() == 1

    def test_multiple_waiters_same_key_selective_wakeup(self):
        sim = Simulator()
        tracker = StabilityTracker()
        near = tracker.wait(sim, "k", vv(dc0=1))
        far = tracker.wait(sim, "k", vv(dc0=5))
        tracker.record("k", vv(dc0=2))
        assert near.done() and not far.done()

    def test_snapshot_copies_state(self):
        tracker = StabilityTracker()
        tracker.record("k", vv(dc0=1))
        snap = tracker.snapshot()
        snap["k"] = vv(dc0=99)
        assert tracker.stable_version("k") == vv(dc0=1)

    def test_notification_counter(self):
        tracker = StabilityTracker()
        tracker.record("k", vv(dc0=1))
        tracker.record("k", vv(dc0=2))
        assert tracker.notifications == 2
