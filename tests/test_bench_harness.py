"""Tests for the benchmark harness (configs, runner, probes)."""

import dataclasses

import pytest

from repro.bench import QUICK, BenchScale, consistency_table, run_ycsb, throughput_sweep
from repro.workload import ProbeConfig, run_causality_probe

TINY = dataclasses.replace(
    QUICK,
    record_count=20,
    duration=0.3,
    warmup=0.1,
    client_counts=(2,),
    latency_clients=2,
    probe_pairs=3,
    probe_rounds=4,
)


class TestRunYcsb:
    def test_produces_result_with_throughput(self):
        result = run_ycsb("chainreaction", "B", 2, TINY)
        assert result.throughput > 0
        assert result.protocol == "chainreaction"
        assert result.workload == "B"

    def test_ack_k_override(self):
        result = run_ycsb("chainreaction", "B", 2, TINY, ack_k=1)
        assert result.store.config.ack_k == 1

    def test_distribution_override(self):
        result = run_ycsb("chainreaction", "C", 2, TINY, distribution="uniform")
        assert result.ops_completed > 0

    def test_config_overrides_reach_store(self):
        result = run_ycsb(
            "chainreaction", "B", 2, TINY, overrides={"allow_prefix_reads": False}
        )
        assert result.store.config.allow_prefix_reads is False


class TestThroughputSweep:
    def test_one_row_per_point(self):
        rows = throughput_sweep(("chainreaction", "eventual"), "B", TINY)
        assert len(rows) == 2  # 2 protocols × 1 client count
        assert {row["protocol"] for row in rows} == {"chainreaction", "eventual"}
        for row in rows:
            assert row["throughput_ops_s"] > 0
            assert row["errors"] == 0


class TestConsistencyTable:
    def test_row_fields(self):
        rows = consistency_table(("chainreaction",), TINY, sites=("dc0", "dc1"))
        assert len(rows) == 1
        row = rows[0]
        assert row["protocol"] == "chainreaction"
        assert row["operations"] > 0
        assert row["causal"] == 0


class TestProbe:
    def test_probe_records_reads_and_writes(self):
        from repro.baselines import build_store

        store = build_store("chainreaction", sites=("dc0", "dc1"), servers_per_site=4)
        history = run_causality_probe(store, ProbeConfig(n_pairs=2, rounds=3))
        assert len(history.puts()) > 0
        assert len(history.gets()) > 0
        # writers live in dc0, readers elsewhere
        sessions = history.sessions()
        assert any(s.startswith("dc0:writer") for s in sessions)
        assert any(s.startswith("dc1:reader") for s in sessions)

    def test_relay_probe_requires_three_sites(self):
        from repro.baselines import build_store
        from repro.workload import run_relay_probe

        store = build_store("chainreaction", sites=("dc0", "dc1"), servers_per_site=4)
        with pytest.raises(ValueError):
            run_relay_probe(store)


class TestScales:
    def test_quick_scale_sanity(self):
        assert QUICK.chain_length <= QUICK.servers_per_site
        assert 1 <= QUICK.ack_k <= QUICK.chain_length
        assert all(c > 0 for c in QUICK.client_counts)
