"""Unit and property tests for key-popularity distributions."""

import random
from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.workload import LatestKeys, ScrambledZipfianKeys, UniformKeys, ZipfianKeys


@pytest.fixture
def rng():
    return random.Random(99)


def sample(chooser, rng, n=5000):
    return Counter(chooser.choose(rng) for _ in range(n))


class TestUniform:
    def test_within_bounds(self, rng):
        chooser = UniformKeys(10)
        counts = sample(chooser, rng)
        assert set(counts) <= set(range(10))

    def test_roughly_even(self, rng):
        counts = sample(UniformKeys(10), rng, n=20000)
        for key in range(10):
            assert 1500 < counts[key] < 2500, counts


class TestZipfian:
    def test_within_bounds(self, rng):
        counts = sample(ZipfianKeys(100), rng)
        assert min(counts) >= 0 and max(counts) < 100

    def test_rank_zero_most_popular(self, rng):
        counts = sample(ZipfianKeys(100), rng, n=20000)
        assert counts.most_common(1)[0][0] == 0

    def test_skew_matches_theory_roughly(self, rng):
        # With theta=0.99 and n=100, rank 0 draws about 19% of requests.
        counts = sample(ZipfianKeys(100, theta=0.99), rng, n=40000)
        share = counts[0] / 40000
        assert 0.14 < share < 0.25, share

    def test_popularity_decreasing_over_head_ranks(self, rng):
        counts = sample(ZipfianKeys(100), rng, n=40000)
        assert counts[0] > counts[1] > counts[3]

    def test_rejects_bad_theta(self):
        with pytest.raises(ValueError):
            ZipfianKeys(10, theta=1.0)

    def test_rejects_empty_keyspace(self):
        with pytest.raises(ValueError):
            ZipfianKeys(0)


class TestScrambledZipfian:
    def test_same_skew_different_hot_key(self, rng):
        counts = sample(ScrambledZipfianKeys(100), rng, n=40000)
        hot_key, hot_count = counts.most_common(1)[0]
        assert hot_count / 40000 > 0.14
        # the point of scrambling: the hot key is no longer rank 0
        assert hot_key != 0

    def test_deterministic_mapping(self):
        a, b = random.Random(1), random.Random(1)
        c1 = ScrambledZipfianKeys(50)
        c2 = ScrambledZipfianKeys(50)
        assert [c1.choose(a) for _ in range(100)] == [c2.choose(b) for _ in range(100)]


class TestLatest:
    def test_most_recent_most_popular(self, rng):
        counts = sample(LatestKeys(100), rng, n=40000)
        assert counts.most_common(1)[0][0] == 99

    def test_within_bounds(self, rng):
        counts = sample(LatestKeys(10), rng)
        assert set(counts) <= set(range(10))


class TestProperties:
    @given(st.integers(min_value=1, max_value=500), st.integers())
    def test_all_choosers_stay_in_range(self, n, seed):
        rng = random.Random(seed)
        for chooser in (UniformKeys(n), ZipfianKeys(n), ScrambledZipfianKeys(n), LatestKeys(n)):
            for _ in range(20):
                assert 0 <= chooser.choose(rng) < n
