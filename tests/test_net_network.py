"""Unit tests for the network fabric: delivery, FIFO, partitions, stats."""

import dataclasses
from typing import Any, ClassVar

import pytest

from repro.errors import AddressUnknownError
from repro.net import Address, FixedLatency, Message, Network, UniformLatency
from repro.sim import Simulator


@dataclasses.dataclass(frozen=True)
class Note(Message):
    type_name: ClassVar[str] = "note"
    body: Any = None


A = Address("dc0", "a")
B = Address("dc0", "b")
C = Address("dc1", "c")


def wire(sim, lan=None, wan=None):
    net = Network(sim, lan=lan or FixedLatency(0.001), wan=wan or FixedLatency(0.010))
    inboxes = {}
    for addr in (A, B, C):
        inboxes[addr] = []
        net.register(addr, lambda msg, src, _in=inboxes[addr]: _in.append((msg, src)))
    return net, inboxes


class TestDelivery:
    def test_message_arrives_after_link_latency(self, sim):
        net, inboxes = wire(sim)
        net.send(A, B, Note(body="hi"))
        sim.run()
        assert sim.now == pytest.approx(0.001)
        assert inboxes[B][0][0].body == "hi"
        assert inboxes[B][0][1] == A

    def test_cross_site_uses_wan_model(self, sim):
        net, inboxes = wire(sim)
        net.send(A, C, Note(body="far"))
        sim.run()
        assert sim.now == pytest.approx(0.010)

    def test_link_override(self, sim):
        net, inboxes = wire(sim)
        net.set_link("dc0", "dc1", FixedLatency(0.5))
        net.send(A, C, Note())
        sim.run()
        assert sim.now == pytest.approx(0.5)

    def test_unknown_destination_raises(self, sim):
        net, _ = wire(sim)
        with pytest.raises(AddressUnknownError):
            net.send(A, Address("dc0", "ghost"), Note())

    def test_unregistered_destination_drops_in_flight(self, sim):
        net, inboxes = wire(sim)
        net.send(A, B, Note())
        net.unregister(B)
        sim.run()
        assert inboxes[B] == []
        assert net.stats.messages_dropped == 1


class TestFifo:
    def test_later_send_never_overtakes_earlier(self, sim):
        # High-variance link: without FIFO the second message would often win.
        net, inboxes = wire(sim, lan=UniformLatency(0.001, 0.100))
        for i in range(50):
            net.send(A, B, Note(body=i))
        sim.run()
        assert [msg.body for msg, _ in inboxes[B]] == list(range(50))

    def test_fifo_is_per_link_not_global(self, sim):
        net, inboxes = wire(sim, lan=FixedLatency(0.001))
        net.set_link("dc0", "dc0", FixedLatency(0.001))
        net.send(A, B, Note(body="ab"))
        net.send(B, A, Note(body="ba"))
        sim.run()
        assert inboxes[B][0][0].body == "ab"
        assert inboxes[A][0][0].body == "ba"


class TestFailures:
    def test_down_node_receives_nothing(self, sim):
        net, inboxes = wire(sim)
        net.set_down(B)
        net.send(A, B, Note())
        sim.run()
        assert inboxes[B] == []
        assert net.stats.messages_dropped == 1

    def test_down_node_sends_nothing(self, sim):
        net, inboxes = wire(sim)
        net.set_down(A)
        net.send(A, B, Note())
        sim.run()
        assert inboxes[B] == []

    def test_crash_while_in_flight_drops_message(self, sim):
        net, inboxes = wire(sim)
        net.send(A, B, Note())
        net.set_down(B)
        sim.run()
        assert inboxes[B] == []

    def test_recovery_restores_delivery(self, sim):
        net, inboxes = wire(sim)
        net.set_down(B)
        net.set_down(B, False)
        net.send(A, B, Note())
        sim.run()
        assert len(inboxes[B]) == 1

    def test_site_partition_blocks_both_directions(self, sim):
        net, inboxes = wire(sim)
        net.block("dc0", "dc1")
        net.send(A, C, Note())
        net.send(C, A, Note())
        sim.run()
        assert inboxes[C] == [] and inboxes[A] == []

    def test_address_level_partition(self, sim):
        net, inboxes = wire(sim)
        net.block(A, B)
        net.send(A, B, Note())
        net.send(A, C, Note())
        sim.run()
        assert inboxes[B] == []
        assert len(inboxes[C]) == 1

    def test_heal_removes_all_partitions(self, sim):
        net, inboxes = wire(sim)
        net.block("dc0", "dc1")
        net.heal()
        net.send(A, C, Note())
        sim.run()
        assert len(inboxes[C]) == 1

    def test_filter_drops_selected_messages(self, sim):
        net, inboxes = wire(sim)
        net.add_filter(lambda s, d, m: not (isinstance(m, Note) and m.body == "drop"))
        net.send(A, B, Note(body="drop"))
        net.send(A, B, Note(body="keep"))
        sim.run()
        assert [m.body for m, _ in inboxes[B]] == ["keep"]

    def test_clear_filters(self, sim):
        net, inboxes = wire(sim)
        net.add_filter(lambda s, d, m: False)
        net.clear_filters()
        net.send(A, B, Note())
        sim.run()
        assert len(inboxes[B]) == 1


class TestStats:
    def test_counts_messages_and_bytes(self, sim):
        net, _ = wire(sim)
        msg = Note(body="x" * 10)
        net.send(A, B, msg)
        assert net.stats.messages_sent == 1
        assert net.stats.bytes_sent == msg.size_bytes()
        assert net.stats.by_type["note"] == 1

    def test_cross_site_traffic_tracked_separately(self, sim):
        net, _ = wire(sim)
        net.send(A, B, Note())
        net.send(A, C, Note())
        assert net.stats.cross_site_messages == 1
        assert 0 < net.stats.cross_site_bytes < net.stats.bytes_sent

    def test_duplicate_registration_rejected(self, sim):
        net, _ = wire(sim)
        from repro.errors import NetworkError

        with pytest.raises(NetworkError):
            net.register(A, lambda m, s: None)
