"""Tests for the ChainReaction client library: metadata and routing."""

import pytest

from helpers import make_store, run_op

from repro.core.messages import deps_size_bytes
from repro.storage import VersionVector


class TestDependencyTable:
    def test_empty_initially(self):
        store = make_store()
        s = store.session()
        assert s.dependency_table() == {}
        assert s.metadata_entries() == 0

    def test_put_with_k_less_than_r_creates_entry(self):
        store = make_store(ack_k=2)
        s = store.session()
        run_op(store, s.put("k", "v"))
        table = s.dependency_table()
        assert list(table) == ["k"]
        assert table["k"].index == 1  # acked by chain position 1

    def test_put_with_k_equals_r_leaves_table_empty(self):
        store = make_store(ack_k=3)
        s = store.session()
        run_op(store, s.put("k", "v"))
        assert s.dependency_table() == {}

    def test_table_collapses_on_put(self):
        store = make_store(ack_k=1)
        s = store.session()
        run_op(store, s.put("a", "1"))
        run_op(store, s.put("b", "2"))
        run_op(store, s.put("c", "3"))
        assert list(s.dependency_table()) == ["c"]

    def test_stable_read_prunes_entry(self):
        store = make_store(ack_k=1)
        s = store.session()
        run_op(store, s.put("k", "v"))
        assert "k" in s.dependency_table()
        store.run(until=2.0)  # stabilise
        run_op(store, s.get("k"))
        assert s.dependency_table() == {}

    def test_unstable_read_tracks_entry(self):
        store = make_store(ack_k=1)
        writer = store.session()
        reader = store.session()
        fut = writer.put("k", "v")

        entries = []

        def immediately_read(_f):
            g = reader.get("k")
            g.add_callback(lambda _g: entries.append(dict(reader.dependency_table())))

        fut.add_callback(immediately_read)
        store.run(until=2.0)
        # The read raced stabilisation; whichever way it went, the table
        # is consistent with the flag it saw. With k=1 and a fast read,
        # the usual outcome is an unstable observation:
        assert entries, "read never completed"

    def test_no_collapse_mode_accumulates(self):
        store = make_store(ack_k=1, collapse_deps_on_put=False)
        s = store.session()
        for i in range(5):
            run_op(store, s.put(f"key{i}", "v"))
        assert s.metadata_entries() == 5

    def test_metadata_bytes_tracks_table(self):
        store = make_store(ack_k=1)
        s = store.session()
        assert s.metadata_bytes() == deps_size_bytes({})
        run_op(store, s.put("some-key", "v"))
        assert s.metadata_bytes() > deps_size_bytes({})


class TestPutDeps:
    def test_same_key_dep_carried_but_not_waited_on(self):
        """The written key's own entry rides along (remote DCs need it
        for transitive causality) but the head does not dependency-wait
        on it — chain order already serialises same-key writes."""
        store = make_store(ack_k=1)
        s = store.session()
        run_op(store, s.put("k", "v1"))
        captured = []
        original = store.network.send

        def spy(src, dst, msg):
            from repro.core.messages import PutRequest

            if isinstance(msg, PutRequest):
                captured.append(dict(msg.deps))
            original(src, dst, msg)

        store.network.send = spy
        run_op(store, s.put("k", "v2"))
        assert list(captured[0]) == ["k"]
        # chain order subsumes the same-key dependency: no wait engaged
        assert sum(n.dep_waits for n in store.servers()) == 0

    def test_put_carries_unstable_deps(self):
        store = make_store(ack_k=1)
        s = store.session()
        run_op(store, s.put("a", "1"))
        captured = []
        original = store.network.send

        def spy(src, dst, msg):
            from repro.core.messages import PutRequest

            if isinstance(msg, PutRequest):
                captured.append(dict(msg.deps))
            original(src, dst, msg)

        store.network.send = spy
        run_op(store, s.put("b", "2"))
        assert list(captured[0]) == ["a"]


class TestSessionIdentity:
    def test_session_ids_unique(self):
        store = make_store()
        ids = {store.session().session_id for _ in range(5)}
        assert len(ids) == 5

    def test_explicit_session_id(self):
        store = make_store()
        s = store.session(session_id="alice")
        assert s.session_id == "dc0:alice"

    def test_unknown_site_rejected(self):
        from repro.errors import ConfigError

        store = make_store()
        with pytest.raises(ConfigError):
            store.session(site="nowhere")


class TestRetryBehaviour:
    def test_get_fails_after_max_retries_when_cluster_dark(self):
        from repro.errors import RequestTimeout

        store = make_store(max_retries=2, op_timeout=0.05, client_retry_backoff=0.01)
        s = store.session()
        for node in store.servers():
            node.crash()
        store.managers["dc0"].crash()
        fut = s.get("k")
        store.run(until=5.0)
        assert fut.failed()
        with pytest.raises(RequestTimeout):
            fut.result()
        assert s.failed_ops == 1

    def test_client_survives_single_server_crash(self):
        store = make_store()
        s = store.session()
        run_op(store, s.put("k", "v"))
        store.run(until=1.0)
        store.servers()[0].crash()
        store.run(until=2.0)  # failure detection + repair
        result = run_op(store, s.get("k"), extra=3.0)
        assert result.value == "v"
