"""Cross-protocol integration tests: every system under the same harness."""

import pytest

from repro.baselines import PROTOCOLS, build_store
from repro.checker import (
    await_convergence,
    check_causal,
    check_session_guarantees,
)
from repro.workload import WorkloadRunner, workload

CAUSAL_PLUS = ("chainreaction", "chain", "cops")


def small_store(protocol, sites=("dc0",)):
    return build_store(
        protocol,
        sites=sites,
        servers_per_site=4,
        chain_length=3,
        seed=17,
        overrides={"service_time": 0.0},
    )


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestEveryProtocol:
    def test_basic_put_get_roundtrip(self, protocol):
        store = small_store(protocol)
        s = store.session()
        fut = s.put("key", "value")
        store.sim.run(until=1.0)
        assert fut.result().version.total() >= 1
        g = s.get("key")
        store.sim.run(until=2.0)
        assert g.result().value == "value"

    def test_overwrite_visible(self, protocol):
        store = small_store(protocol)
        s = store.session()
        for value in ("v1", "v2", "v3"):
            fut = s.put("key", value)
            store.sim.run(until=store.sim.now + 1.0)
            assert fut.done()
        g = s.get("key")
        store.sim.run(until=store.sim.now + 1.0)
        assert g.result().value == "v3"

    def test_delete_hides_key(self, protocol):
        store = small_store(protocol)
        s = store.session()
        for op in (s.put("key", "v"), s.delete("key")):
            store.sim.run(until=store.sim.now + 1.0)
        g = s.get("key")
        store.sim.run(until=store.sim.now + 1.0)
        assert g.result().value is None

    def test_mixed_workload_converges(self, protocol):
        store = small_store(protocol, sites=("dc0", "dc1"))
        spec = workload("A", record_count=20, value_size=16)
        runner = WorkloadRunner(store, spec, n_clients=6, duration=0.5, warmup=0.1)
        result = runner.run()
        assert result.ops_completed > 50
        assert result.errors == 0
        keys = [spec.key(i) for i in range(20)]
        report = await_convergence(store, keys, max_extra_time=10.0)
        assert report.converged, f"{protocol}: {report}"

    def test_sessions_isolated(self, protocol):
        store = small_store(protocol)
        s1, s2 = store.session(), store.session()
        assert s1.session_id != s2.session_id


@pytest.mark.parametrize("protocol", CAUSAL_PLUS)
class TestCausalPlusProtocols:
    def test_no_causal_violations_under_load(self, protocol):
        store = small_store(protocol, sites=("dc0", "dc1"))
        spec = workload("A", record_count=15, value_size=16)
        runner = WorkloadRunner(store, spec, n_clients=6, duration=0.5, warmup=0.1)
        result = runner.run()
        assert check_causal(result.history) == []

    def test_all_session_guarantees_hold(self, protocol):
        store = small_store(protocol, sites=("dc0", "dc1"))
        spec = workload("A", record_count=15, value_size=16)
        runner = WorkloadRunner(store, spec, n_clients=6, duration=0.5, warmup=0.1)
        result = runner.run()
        for guarantee, violations in check_session_guarantees(result.history).items():
            assert violations == [], (protocol, guarantee, violations[:3])


class TestRegistry:
    def test_unknown_protocol_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            build_store("mystery")

    def test_all_protocols_buildable(self):
        for protocol in PROTOCOLS:
            store = build_store(protocol, servers_per_site=3, chain_length=2)
            assert store.name == protocol or (
                protocol == "chainreaction" and store.name == "chainreaction"
            )

    def test_overrides_passed_through(self):
        store = build_store("chainreaction", overrides={"ack_k": 1})
        assert store.config.ack_k == 1
