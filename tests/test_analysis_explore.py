"""Tests for the bounded schedule explorer: the DeliveryChooser kernel
seam, the proving ground (every seeded mutation caught, every clean twin
passing), counterexample minimization and bit-for-bit replay, DPOR
pruning vs naive enumeration, and the CLI surface."""

import io
import json

import pytest

from repro.analysis.explore import (
    FaultAction,
    Schedule,
    explore_scope,
    load_schedule,
    minimize_counterexample,
    replay_schedule,
    save_counterexample,
    scenario,
    scenario_names,
)
from repro.core.config import PROTOCOL_MUTATIONS
from repro.sim.kernel import DeliveryChooser, Simulator

#: catch budgets observed empirically: the latest catch across the
#: proving ground is schedule #53 (stale_stability_vector); 400 leaves
#: ~7x slack without risking long test runs.
CATCH_BUDGET = 400

#: clean twins complete within ~30 schedules except split_brain_mint
#: and stale_stability_vector, whose clean spaces are larger; their
#: budgets below assert "no violation in the first N schedules" rather
#: than full enumeration (CI's explore-smoke job does the exhaustive
#: clean run on the smallest scope).
CLEAN_BUDGETS = {"split_brain_mint": 150, "stale_stability_vector": 150}


class _ListChooser(DeliveryChooser):
    """Release queued callbacks one per consultation, recording when."""

    __slots__ = ("pending", "consulted_at")

    def __init__(self, pending):
        self.pending = list(pending)
        self.consulted_at = []

    def release(self, sim):
        self.consulted_at.append(sim.now)
        if not self.pending:
            return False
        callback = self.pending.pop(0)
        sim.post_at(sim.now, callback)
        return True


class TestDeliveryChooserSeam:
    def test_chooser_drains_before_time_advances(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "timer")
        chooser = _ListChooser(
            [lambda: order.append("a"), lambda: order.append("b")]
        )
        sim.set_delivery_chooser(chooser)
        sim.run_window(2.0)
        # Both held deliveries run before the t=1.0 timer fires.
        assert order == ["a", "b", "timer"]

    def test_chooser_consulted_at_each_instant(self):
        sim = Simulator()
        chooser = _ListChooser([])
        sim.set_delivery_chooser(chooser)
        sim.schedule(0.5, lambda: None)
        sim.run_window(1.0)
        # Consulted when time would advance, at distinct instants.
        assert chooser.consulted_at
        assert chooser.consulted_at == sorted(chooser.consulted_at)

    def test_detached_chooser_restores_fast_path(self):
        sim = Simulator()
        order = []
        sim.set_delivery_chooser(_ListChooser([lambda: order.append("x")]))
        sim.set_delivery_chooser(None)
        sim.schedule(0.1, order.append, "timer")
        sim.run_window(1.0)
        assert order == ["timer"]


class TestScenarios:
    def test_every_mutation_has_a_scenario(self):
        names = scenario_names()
        for mutation in PROTOCOL_MUTATIONS:
            assert mutation in names
        assert "smallest" in names

    def test_mutation_scenarios_carry_their_mutation(self):
        for mutation in PROTOCOL_MUTATIONS:
            scope = scenario(mutation)
            assert scope.mutations == (mutation,)
            assert scope.without_mutations().mutations == ()

    def test_unknown_scenario_rejected(self):
        from repro.analysis.explore import ExploreError

        with pytest.raises(ExploreError):
            scenario("no-such-scenario")

    def test_after_put_gate_round_trips_through_schedule_files(self, tmp_path):
        scope = scenario("split_brain_mint")
        gated = [act for act in scope.actions if act.after_put]
        assert gated, "split_brain_mint relies on an after_put-gated recover"
        restored = type(scope).from_dict(scope.to_dict())
        assert restored.actions == scope.actions
        assert isinstance(restored.actions[0], FaultAction)


class TestProvingGround:
    @pytest.mark.parametrize("mutation", PROTOCOL_MUTATIONS)
    def test_mutation_is_caught(self, mutation):
        report = explore_scope(scenario(mutation), budget=CATCH_BUDGET)
        assert not report.clean, f"{mutation} not caught in {CATCH_BUDGET} schedules"
        assert report.counterexample is not None
        assert report.counterexample.violations
        assert report.counterexample.trace
        assert mutation in report.scope.mutations

    @pytest.mark.parametrize("mutation", PROTOCOL_MUTATIONS)
    def test_clean_twin_passes(self, mutation):
        budget = CLEAN_BUDGETS.get(mutation, 2000)
        report = explore_scope(
            scenario(mutation).without_mutations(), budget=budget
        )
        assert report.clean, (
            f"clean twin of {mutation} violated: "
            f"{report.counterexample and report.counterexample.violations}"
        )
        if mutation not in CLEAN_BUDGETS:
            assert report.complete, f"clean twin of {mutation} blew budget {budget}"


class TestCounterexampleReplay:
    @pytest.fixture(scope="class")
    def caught(self):
        # drop_stable_cascade catches on the canonical schedule — the
        # cheapest full save/replay round-trip in the proving ground.
        return explore_scope(scenario("drop_stable_cascade"), budget=CATCH_BUDGET)

    def test_saved_schedule_retriggers_bit_for_bit(self, caught, tmp_path):
        path = str(tmp_path / "ce.json")
        saved = save_counterexample(path, caught)
        loaded = load_schedule(path)
        assert loaded.trace == saved.trace
        assert loaded.signature == saved.signature
        result = replay_schedule(loaded, strict=True)
        assert result.reproduced
        assert result.signature == caught.counterexample.signature
        assert result.violations == loaded.violations

    def test_replay_on_fixed_tree_passes(self, caught, tmp_path):
        path = str(tmp_path / "ce.json")
        saved = save_counterexample(path, caught)
        result = replay_schedule(saved, on_clean_tree=True)
        assert not result.reproduced
        assert not result.violations

    def test_minimization_never_grows_and_preserves_signature(self, caught):
        minimal = minimize_counterexample(caught.scope, caught.counterexample)
        assert len(minimal.trace) <= len(caught.counterexample.trace)
        assert minimal.signature == caught.counterexample.signature
        result = replay_schedule(minimal, strict=True)
        assert result.reproduced

    def test_schedule_file_is_seed_independent_json(self, caught, tmp_path):
        path = str(tmp_path / "ce.json")
        save_counterexample(path, caught)
        data = json.loads(open(path).read())
        assert data["scope"]["name"] == "drop_stable_cascade"
        assert data["trace"]
        assert "seed" not in data  # replays from explicit choices, not a seed


class TestDPOR:
    def test_dpor_prunes_at_least_5x_vs_naive(self):
        scope = scenario("drop_stable_cascade").without_mutations()
        dpor = explore_scope(scope, budget=20000, mode="dpor")
        naive = explore_scope(scope, budget=20000, mode="naive")
        assert dpor.complete and naive.complete
        assert dpor.clean and naive.clean
        ratio = naive.schedules / dpor.schedules
        assert ratio >= 5.0, f"pruning ratio {ratio:.1f}x below the 5x floor"

    def test_dpor_and_naive_agree_on_the_verdict(self):
        scope = scenario("drop_stable_cascade")
        dpor = explore_scope(scope, budget=CATCH_BUDGET, mode="dpor")
        naive = explore_scope(scope, budget=CATCH_BUDGET, mode="naive")
        assert not dpor.clean and not naive.clean
        assert (
            dpor.counterexample.signature == naive.counterexample.signature
        )

    def test_unknown_mode_rejected(self):
        from repro.analysis.explore import ExploreError

        with pytest.raises(ExploreError):
            explore_scope(scenario("smallest"), mode="bogus")


class TestCliExplore:
    def _run(self, argv):
        from repro.cli import main

        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_list_scenarios(self):
        code, text = self._run(["explore", "--list"])
        assert code == 0
        for mutation in PROTOCOL_MUTATIONS:
            assert mutation in text

    def test_expect_violation_catches_and_saves(self, tmp_path):
        path = str(tmp_path / "bug.json")
        code, text = self._run(
            [
                "explore", "--scope", "drop_stable_cascade",
                "--expect-violation", "--save", path,
                "--budget", str(CATCH_BUDGET),
            ]
        )
        assert code == 0
        assert "VIOLATION" in text
        assert "saved" in text

        replay_code, replay_text = self._run(["explore", "--replay", path])
        assert replay_code == 0
        assert "reproduced bit-for-bit" in replay_text

        clean_code, clean_text = self._run(
            ["explore", "--replay", path, "--clean-tree"]
        )
        assert clean_code == 0
        assert "bug is fixed" in clean_text

    def test_clean_run_exits_zero(self):
        code, text = self._run(
            ["explore", "--scope", "drop_stable_cascade", "--clean"]
        )
        assert code == 0
        assert "no violation found" in text

    def test_expect_violation_fails_on_clean_tree(self):
        code, _ = self._run(
            [
                "explore", "--scope", "drop_stable_cascade", "--clean",
                "--expect-violation",
            ]
        )
        assert code == 1

    def test_compare_naive_reports_ratio(self):
        code, text = self._run(
            [
                "explore", "--scope", "drop_stable_cascade", "--clean",
                "--compare-naive",
            ]
        )
        assert code == 0
        assert "pruning ratio" in text
