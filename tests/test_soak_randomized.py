"""Randomized soak tests: many seeds, full consistency verification.

Each scenario drives a randomized mixed workload (with optional failure
injection) against ChainReaction and verifies the full causal+ contract
afterwards — causal consistency of the recorded history, all four
session guarantees, and cross-replica convergence. Several seeds run so
scheduling races differ between runs; any seed that fails reproduces
deterministically.
"""

import pytest

from repro.baselines import build_store
from repro.checker import (
    await_convergence,
    check_causal,
    check_session_guarantees,
)
from repro.workload import WorkloadRunner, workload

SEEDS = [1, 7, 23, 99]


def drive(seed, sites=("dc0",), crash=False, ack_k=2, duration=0.6):
    store = build_store(
        "chainreaction",
        sites=sites,
        servers_per_site=5,
        chain_length=3,
        ack_k=ack_k,
        seed=seed,
        overrides={"service_time": 0.0},
    )
    if crash:
        victim = store.servers()[-1]
        store.sim.schedule_at(0.3, victim.crash)
    spec = workload("A", record_count=25, value_size=24)
    runner = WorkloadRunner(
        store, spec, n_clients=6, duration=duration, warmup=0.1
    )
    result = runner.run()
    return store, spec, result


@pytest.mark.parametrize("seed", SEEDS)
class TestSingleDcSoak:
    def test_causal_plus_contract_holds(self, seed):
        store, spec, result = drive(seed)
        assert result.ops_completed > 200
        assert result.errors == 0
        assert check_causal(result.history) == []
        for guarantee, violations in check_session_guarantees(result.history).items():
            assert violations == [], (seed, guarantee)
        keys = [spec.key(i) for i in range(25)]
        assert await_convergence(store, keys, max_extra_time=5.0).converged


@pytest.mark.parametrize("seed", SEEDS[:2])
class TestGeoSoak:
    def test_causal_plus_contract_holds_across_dcs(self, seed):
        store, spec, result = drive(seed, sites=("dc0", "dc1"))
        assert result.ops_completed > 200
        assert check_causal(result.history) == []
        keys = [spec.key(i) for i in range(25)]
        assert await_convergence(store, keys, max_extra_time=10.0).converged


@pytest.mark.parametrize("seed", SEEDS[:2])
class TestCrashSoak:
    def test_consistency_through_crash(self, seed):
        store, spec, result = drive(seed, crash=True, duration=1.2)
        # A handful of reads can legitimately observe versions that died
        # with the crashed server's unforwarded writes.
        assert len(check_causal(result.history)) <= 3
        keys = [spec.key(i) for i in range(25)]
        assert await_convergence(store, keys, max_extra_time=5.0).converged


@pytest.mark.parametrize("ack_k", [1, 2, 3])
class TestAckKSoak:
    def test_contract_independent_of_k(self, ack_k):
        store, spec, result = drive(seed=5, ack_k=ack_k)
        assert check_causal(result.history) == []
        keys = [spec.key(i) for i in range(25)]
        assert await_convergence(store, keys, max_extra_time=5.0).converged
