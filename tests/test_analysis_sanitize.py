"""Tests for the simulation race detector: trace diffing, the twice-run
determinism check, and localization of deliberately injected
nondeterminism."""

import pytest

from repro.analysis import capture_run, locate_divergence, sanitize_run
from repro.net.message import Message

FAST = dict(clients=2, duration=0.3, warmup=0.1, records=10, servers_per_site=3)


class TestLocateDivergence:
    def test_identical_traces_have_no_divergence(self):
        trace = [(0.1, "a", "b", "put", 64), (0.2, "b", "c", "ack", 32)]
        assert locate_divergence(trace, list(trace)) is None

    def test_first_mismatch_located(self):
        left = [(0.1, "a", "b", "put", 64), (0.2, "b", "c", "ack", 32)]
        right = [(0.1, "a", "b", "put", 64), (0.2, "b", "c", "ack", 48)]
        divergence = locate_divergence(left, right)
        assert divergence.index == 1
        assert divergence.left == left[1]
        assert divergence.right == right[1]

    def test_length_mismatch_located_at_tail(self):
        left = [(0.1, "a", "b", "put", 64)]
        right = [(0.1, "a", "b", "put", 64), (0.2, "b", "c", "ack", 32)]
        divergence = locate_divergence(left, right)
        assert divergence.index == 1
        assert divergence.left is None and divergence.right == right[1]

    def test_context_is_carried(self):
        left = [(float(i), "a", "b", "m", i) for i in range(10)]
        right = list(left)
        right[7] = (7.0, "a", "b", "m", 999)
        divergence = locate_divergence(left, right, context=3)
        assert divergence.context_left == tuple(left[4:7])
        assert "index 7" in divergence.format()


class TestCaptureRun:
    def test_capture_records_messages(self):
        capture = capture_run("chainreaction", seed=7, **FAST)
        assert len(capture.trace) > 0
        assert capture.ops_completed > 0
        # Every entry is (time, src, dst, type, size).
        t, src, dst, type_name, size = capture.trace[0]
        assert isinstance(t, float) and isinstance(size, int)
        assert capture.invariant_report is None

    def test_capture_with_invariants(self):
        capture = capture_run("chainreaction", seed=7, check_invariants=True, **FAST)
        assert capture.invariant_report is not None
        assert capture.invariant_report.clean

    def test_tap_detaches_cleanly(self):
        # Two captures of the same config must not interfere (the tap
        # wraps an instance attribute, not the class).
        first = capture_run("chainreaction", seed=7, **FAST)
        second = capture_run("chainreaction", seed=7, **FAST)
        assert first.trace == second.trace


class TestSanitizeRun:
    def test_twice_run_is_deterministic(self):
        report = sanitize_run("chainreaction", seed=42, **FAST)
        assert report.divergence is None
        assert report.events_processed[0] == report.events_processed[1]
        assert report.trace_length > 0
        assert report.clean
        assert "no divergence" in report.format()

    def test_baseline_protocol_is_deterministic_too(self):
        report = sanitize_run("eventual", seed=42, **FAST)
        assert report.clean

    def test_different_seed_diverges(self):
        report = sanitize_run("chainreaction", seed=42, run_kwargs={"seed": 43}, **FAST)
        assert report.divergence is not None
        assert not report.clean

    def test_injected_nondeterminism_is_localized(self):
        # Schedule a rogue message in run 2 only, firing mid-run at
        # t=0.2: the detector must localize the first divergent entry at
        # or after the injection time, proving the prefix matched.
        inject_at = 0.2

        def perturb(store):
            node = store.nodes["dc0"][0]

            def rogue() -> None:
                store.network.send(node.address, node.address, Message())

            store.sim.schedule(inject_at, rogue)

        report = sanitize_run(
            "chainreaction",
            seed=42,
            run_kwargs={"mutate_store": perturb},
            **FAST,
        )
        assert report.divergence is not None
        assert report.divergence.index > 0
        divergent_times = [
            entry[0]
            for entry in (report.divergence.left, report.divergence.right)
            if entry is not None
        ]
        assert divergent_times and min(divergent_times) >= inject_at

    def test_invariants_ride_along(self):
        report = sanitize_run(
            "chainreaction", seed=42, check_invariants=True, **FAST
        )
        assert report.invariant_report is not None
        assert report.clean
        assert "invariants:" in report.format()


class TestSanitizeSharded:
    def test_sharded_twice_run_is_clean(self):
        from repro.analysis import sanitize_sharded

        report = sanitize_sharded(
            "chainreaction",
            seed=42,
            clients=2,
            duration=0.2,
            warmup=0.05,
            records=10,
            servers_per_site=3,
            workers=2,
        )
        assert report.workers == 2
        assert report.twice_run_clean
        assert report.worker_count_clean
        assert report.clean
        assert report.digests[0] == report.digests[1] == report.serial_digest
        assert "no divergence" in report.format()

    def test_serial_reference_is_optional(self):
        from repro.analysis import sanitize_sharded

        report = sanitize_sharded(
            "chainreaction",
            seed=7,
            clients=2,
            duration=0.2,
            warmup=0.05,
            records=10,
            servers_per_site=3,
            workers=2,
            compare_serial=False,
        )
        assert report.serial_digest is None
        assert report.worker_count_clean  # vacuously
        assert report.clean == report.twice_run_clean

    def test_cli_sanitize_workers(self):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(
            [
                "sanitize",
                "--workers", "2",
                "--clients", "2",
                "--duration", "0.2",
                "--warmup", "0.05",
                "--records", "10",
                "--servers", "3",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "sharded engine" in text
        assert "no divergence" in text
        assert "matches workers=1" in text

    def test_cli_sanitize_workers_rejects_unshardable_protocol(self):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(
            ["sanitize", "--workers", "2", "--protocol", "eventual"], out=out
        )
        assert code == 2


class TestCliSanitize:
    def test_cli_sanitize_exits_zero_on_clean_run(self):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(
            [
                "sanitize",
                "--clients", "2",
                "--duration", "0.3",
                "--warmup", "0.1",
                "--records", "10",
                "--servers", "3",
                "--invariants",
            ],
            out=out,
        )
        assert code == 0
        assert "no divergence" in out.getvalue()
