"""Tests for the partial-replication shard catalog (PR 10): placement
determinism (pinned owner tables), the ring-prefix property that makes
primaries degree-invariant, pickle/value semantics for the sharded
simulator, validation, and the config gating that keeps full
replication (the default) on the exact pre-PR code path."""

import pickle

import pytest

from repro.cluster.placement import SITE_VIRTUAL_NODES, ShardCatalog, shard_catalog
from repro.core.config import ChainReactionConfig
from repro.errors import ClusterError, ConfigError

SITES = ("dc0", "dc1", "dc2")

#: Pinned placement for (dc0..dc2, 8 shards, r=2, 16 vnodes). Placement
#: is a pure function of these arguments; if this table moves, every
#: committed trace and BENCH_PR10.json arm moves with it — treat a
#: failure here as a placement-algorithm change, not a test update.
PINNED_OWNERS_R2 = (
    ("dc1", "dc0"),
    ("dc1", "dc2"),
    ("dc1", "dc0"),
    ("dc0", "dc2"),
    ("dc2", "dc1"),
    ("dc0", "dc2"),
    ("dc0", "dc2"),
    ("dc1", "dc2"),
)


class TestDeterminism:
    def test_pinned_owner_table(self):
        catalog = ShardCatalog(SITES, 8, 2)
        assert catalog.owners == PINNED_OWNERS_R2

    def test_rebuild_is_identical(self):
        a = ShardCatalog(SITES, 16, 2)
        b = ShardCatalog(SITES, 16, 2)
        assert a.owners == b.owners
        assert a == b and hash(a) == hash(b)

    def test_independent_of_any_seed(self):
        # placement must never read RNG or runtime state: two configs
        # that differ only in seed resolve every key identically
        for seed in (1, 7, 12345):
            config = ChainReactionConfig(
                sites=SITES, seed=seed, replication_degree=2, num_shards=8
            )
            assert config.placement().owners == PINNED_OWNERS_R2

    def test_virtual_node_count_is_part_of_the_identity(self):
        default = ShardCatalog(SITES, 64, 2)
        assert default.virtual_nodes == SITE_VIRTUAL_NODES
        coarse = ShardCatalog(SITES, 64, 2, virtual_nodes=1)
        assert coarse != default
        # with one vnode per site the walk order changes for at least
        # some shard — the count genuinely shapes placement
        assert coarse.owners != default.owners

    def test_primary_is_degree_invariant(self):
        """``chain_for`` returns ring prefixes, so the r=1 owner heads
        every longer owner list: all writes to a shard serialise through
        the same DC at every degree (what lets the A/B compare arms on
        identical key sequences)."""
        catalogs = [ShardCatalog(SITES, 32, r) for r in (1, 2, 3)]
        for shard in range(32):
            chains = [c.owners[shard] for c in catalogs]
            for shorter, longer in zip(chains, chains[1:]):
                assert longer[: len(shorter)] == shorter

    def test_owners_cover_and_balance(self):
        catalog = ShardCatalog(SITES, 16, 2)
        for owners in catalog.owners:
            assert len(owners) == 2
            assert len(set(owners)) == 2
            assert set(owners) <= set(SITES)
        # every site owns a nontrivial share of the keyspace
        for site in SITES:
            assert len(catalog.owned_shards(site)) >= 16 // len(SITES)


class TestLookups:
    def test_shard_of_stable_and_memoised(self):
        catalog = ShardCatalog(SITES, 8, 2)
        assert catalog.shard_of("user00000000") == 6
        assert catalog.shard_of("user00000000") == 6  # cached path
        assert catalog.primary_for("user00000000") == "dc0"

    def test_owners_for_matches_owned_shards(self):
        catalog = ShardCatalog(SITES, 16, 2)
        for i in range(50):
            key = f"user{i:08d}"
            shard = catalog.shard_of(key)
            owners = catalog.owners_for(key)
            assert owners == catalog.owners[shard]
            for site in SITES:
                assert catalog.owns(site, key) == (site in owners)
                assert catalog.owns_shard(site, shard) == (site in owners)
                assert (shard in catalog.owned_shards(site)) == (site in owners)

    def test_is_full_and_describe(self):
        assert ShardCatalog(SITES, 4, 3).is_full
        partial = ShardCatalog(SITES, 4, 1)
        assert not partial.is_full
        rows = partial.describe()
        assert len(rows) == 4
        assert rows[0] == (0, partial.owners[0])


class TestValueSemantics:
    def test_pickle_round_trip(self):
        catalog = ShardCatalog(SITES, 16, 2)
        clone = pickle.loads(pickle.dumps(catalog))
        assert clone == catalog
        assert clone.owners == catalog.owners
        # the memo cache is rebuilt empty, not shipped
        assert clone.shard_of("user00000000") == catalog.shard_of("user00000000")

    def test_factory_caches_per_shape(self):
        a = shard_catalog(SITES, 16, 2)
        b = shard_catalog(SITES, 16, 2)
        assert a is b
        assert shard_catalog(SITES, 16, 1) is not a

    def test_inequality_across_shapes(self):
        base = ShardCatalog(SITES, 16, 2)
        assert base != ShardCatalog(SITES, 8, 2)
        assert base != ShardCatalog(SITES, 16, 1)
        assert base != ShardCatalog(("dc0", "dc1"), 16, 2)
        assert base.__eq__(object()) is NotImplemented


class TestValidation:
    def test_degree_bounds(self):
        with pytest.raises(ClusterError, match="replication_degree"):
            ShardCatalog(SITES, 8, 0)
        with pytest.raises(ClusterError, match="replication_degree"):
            ShardCatalog(SITES, 8, 4)

    def test_shard_count_bounds(self):
        with pytest.raises(ClusterError, match="num_shards"):
            ShardCatalog(SITES, 0, 1)


class TestConfigGating:
    def test_default_is_full_replication(self):
        config = ChainReactionConfig(sites=SITES)
        assert config.replication_degree == 0
        assert config.placement() is None

    def test_degree_equal_to_sites_is_full(self):
        # explicit r=sites must take the same no-catalog path as the
        # default — the golden-trace invariance gate depends on it
        config = ChainReactionConfig(sites=SITES, replication_degree=3)
        assert config.placement() is None

    def test_partial_degree_builds_a_catalog(self):
        config = ChainReactionConfig(
            sites=SITES, replication_degree=2, num_shards=8
        )
        catalog = config.placement()
        assert catalog is not None
        assert catalog.replication_degree == 2
        assert catalog.num_shards == 8
        assert config.placement() is catalog  # cached value object

    def test_degree_out_of_range_rejected(self):
        with pytest.raises(ConfigError, match="replication_degree"):
            ChainReactionConfig(sites=SITES, replication_degree=4)
        with pytest.raises(ConfigError, match="num_shards"):
            ChainReactionConfig(sites=SITES, num_shards=0)
