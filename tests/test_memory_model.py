"""Tests for the memory-scale engine: version/string interning
invariants, the columnar dependency table with copy-on-write snapshots,
the memory census, the legacy memory model used as the scale-benchmark
baseline, and a shrunk end-to-end run of ``perf --scale`` itself."""

import pickle

import pytest

from repro.core.deptable import (
    DepSnapshot,
    DepTable,
    LegacyDepTable,
    make_dep_table,
    set_dep_table_factory,
)
from repro.core.messages import DepEntry, deps_size_bytes
from repro.metrics.memory import TracedPeak, census_totals, memory_census, traced_call
from repro.perf.legacy_mem import legacy_memory_model
from repro.perf.scale import bench_scale
from repro.storage.version import (
    ZERO,
    VersionVector,
    clear_intern_pool,
    intern_stats,
    intern_str,
    interning_enabled,
    set_interning,
)


@pytest.fixture(autouse=True)
def _fresh_pool():
    """Each test starts from a clean pool and restores interning."""
    previous = set_interning(True)
    clear_intern_pool()
    yield
    set_interning(previous)
    clear_intern_pool()


def vv(**entries):
    return VersionVector(entries)


class TestInterningInvariants:
    def test_equal_vectors_share_identity_when_interned(self):
        assert vv(dc0=3, dc1=1) is vv(dc1=1, dc0=3)
        assert VersionVector() is ZERO

    def test_interned_equals_uninterned(self):
        # A vector built while interning is on must compare and hash
        # identically to one built while it is off — interning collapses
        # identity, never value.
        pooled = vv(dc0=3, dc1=1)
        set_interning(False)
        unpooled = vv(dc0=3, dc1=1)
        assert pooled is not unpooled
        assert pooled == unpooled
        assert hash(pooled) == hash(unpooled)
        assert pooled.total_order_key() == unpooled.total_order_key()
        assert not pooled.concurrent_with(unpooled)

    def test_operations_mix_pooled_and_unpooled(self):
        pooled = vv(dc0=1)
        set_interning(False)
        unpooled = vv(dc1=2)
        merged = pooled.merge(unpooled)
        assert merged.entries() == {"dc0": 1, "dc1": 2}
        assert VersionVector.join([pooled, unpooled]) == merged

    def test_pool_is_bounded(self):
        capacity = intern_stats()["capacity"]
        for i in range(capacity + 100):
            vv(dc0=i + 1)
        assert intern_stats()["entries"] <= capacity
        # Overflow vectors still work, they are just not shared.
        big = vv(dc0=10**9)
        assert big == vv(dc0=10**9)

    def test_pickle_roundtrips_through_pool(self):
        original = vv(dc0=4, dc1=2)
        clone = pickle.loads(pickle.dumps(original))
        assert clone is original  # re-pooled on load
        assert ZERO.entries() == {}  # ZERO untouched by unpickling
        set_interning(False)
        clone = pickle.loads(pickle.dumps(original))
        assert clone == original and clone is not original

    def test_subclass_bypasses_pool(self):
        class Tagged(VersionVector):
            pass

        tagged = Tagged({"dc0": 3})
        assert type(tagged) is Tagged
        assert tagged == vv(dc0=3)
        assert tagged is not vv(dc0=3)

    def test_clear_preserves_canonical_zero(self):
        vv(dc0=1)
        clear_intern_pool()
        stats = intern_stats()
        assert stats["entries"] == 1  # just ZERO
        assert VersionVector() is ZERO


class TestStringInterning:
    def test_interned_string_is_shared(self):
        a = intern_str("user:" + "0" * 8)
        b = intern_str("user:" + "0" * 8)
        assert a is b

    def test_disabled_interning_passes_through(self):
        set_interning(False)
        s = "user:" + "1" * 8
        assert intern_str(s) is s
        assert intern_stats()["str_entries"] == 0

    def test_str_pool_is_bounded(self):
        capacity = intern_stats()["capacity"]
        for i in range(capacity + 50):
            intern_str(f"k{i}")
        assert intern_stats()["str_entries"] <= capacity


class TestDepTable:
    def entries(self, table):
        return {k: (e.version, e.index) for k, e in table.items()}

    def test_set_get_roundtrip(self):
        table = DepTable()
        table.set("a", vv(dc0=1), 2)
        assert table.version_for("a") == vv(dc0=1)
        assert table.index_for("a") == 2
        assert table["a"] == DepEntry(vv(dc0=1), 2)
        assert "a" in table and len(table) == 1
        assert table.version_for("missing") is None

    def test_update_keeps_iteration_position(self):
        table = DepTable()
        for name in ("a", "b", "c"):
            table.set(name, vv(dc0=1), 0)
        table.set("b", vv(dc0=9), 1)
        assert list(table) == ["a", "b", "c"]

    def test_pop_and_readd_moves_to_end(self):
        table = DepTable()
        for name in ("a", "b", "c"):
            table.set(name, vv(dc0=1), 0)
        popped = table.pop("a")
        assert popped == DepEntry(vv(dc0=1), 0)
        assert table.pop("a", "sentinel") == "sentinel"
        table.set("a", vv(dc0=2), 0)
        assert list(table) == ["b", "c", "a"]

    def test_snapshot_does_not_see_appends(self):
        table = DepTable()
        table.set("a", vv(dc0=1), 0)
        snap = table.snapshot()
        table.set("b", vv(dc0=2), 0)
        assert set(snap.keys()) == {"a"}
        assert set(table.keys()) == {"a", "b"}

    def test_snapshot_immune_to_in_place_update(self):
        table = DepTable()
        table.set("a", vv(dc0=1), 0)
        snap = table.snapshot()
        table.set("a", vv(dc0=9), 3)  # forces copy-on-write
        assert snap["a"] == DepEntry(vv(dc0=1), 0)
        assert table["a"] == DepEntry(vv(dc0=9), 3)

    def test_snapshot_immune_to_pop_and_clear(self):
        table = DepTable()
        table.set("a", vv(dc0=1), 0)
        table.set("b", vv(dc0=2), 1)
        snap = table.snapshot()
        table.pop("a")
        table.clear()
        assert dict(snap) == {
            "a": DepEntry(vv(dc0=1), 0),
            "b": DepEntry(vv(dc0=2), 1),
        }
        assert len(table) == 0

    def test_snapshot_sizing_matches_dict_form(self):
        table = DepTable()
        for i in range(5):
            table.set(f"key-{i}", vv(dc0=i + 1, dc1=i), i % 3)
        snap = table.snapshot()
        assert snap.size_bytes() == deps_size_bytes(dict(snap))
        assert table.size_bytes() == deps_size_bytes(table.as_dict())

    def test_snapshot_equality_with_dict(self):
        table = DepTable()
        table.set("a", vv(dc0=1), 0)
        snap = table.snapshot()
        assert snap == {"a": DepEntry(vv(dc0=1), 0)}
        assert snap == table.snapshot()
        assert isinstance(snap, DepSnapshot)

    def test_holes_compact(self):
        table = DepTable()
        for i in range(64):
            table.set(f"k{i}", vv(dc0=1), 0)
        for i in range(63):
            table.pop(f"k{i}")
        assert len(table) == 1
        # Compaction fired while the columns were still >= the minimum
        # size; the tail of pops below that floor may leave small holes.
        assert table.column_slots() < 64
        assert list(table) == ["k63"]

    def test_factory_swap(self):
        previous = set_dep_table_factory(LegacyDepTable)
        try:
            assert isinstance(make_dep_table(), LegacyDepTable)
        finally:
            set_dep_table_factory(previous)
        assert isinstance(make_dep_table(), DepTable)

    def test_legacy_table_same_surface(self):
        table = LegacyDepTable()
        table.set("a", vv(dc0=1), 2)
        assert table.version_for("a") == vv(dc0=1)
        assert table.index_for("a") == 2
        snap = table.snapshot()
        assert isinstance(snap, dict)
        table.set("a", vv(dc0=9), 0)
        assert snap["a"] == DepEntry(vv(dc0=1), 2)  # plain-dict copy
        assert table.size_bytes() == deps_size_bytes(table)


def small_store(**overrides):
    from repro.baselines.registry import build_store

    return build_store(
        "chainreaction",
        sites=("dc0", "dc1"),
        servers_per_site=3,
        chain_length=2,
        seed=11,
        **overrides,
    )


def run_small_workload(store, duration=0.4):
    from repro.workload import WorkloadRunner, workload

    spec = workload("B", record_count=20, value_size=32)
    runner = WorkloadRunner(
        store, spec, n_clients=4, duration=duration, warmup=0.1,
        record_history=False,
    )
    return runner.run()


class TestMemoryCensus:
    def test_census_counts_preloaded_records(self):
        store = small_store()
        store.preload({f"k{i}": "v" for i in range(10)})
        census = memory_census(store)
        # 10 keys × replicas on both sites.
        assert census["records"]["objects"] >= 20
        assert census["records"]["bytes"] > 0
        assert census["stability"]["objects"] > 0
        assert census["vv_intern_pool"]["entries"] >= 1

    def test_census_covers_session_dep_tables(self):
        store = small_store()
        run_small_workload(store)
        census = memory_census(store)
        assert census["dep_tables"]["objects"] > 0
        assert census["dep_tables"]["bytes"] > 0
        assert census["dep_tables"]["column_slots"] >= census["dep_tables"]["objects"]
        totals = census_totals(census)
        assert totals["objects"] > 0 and totals["bytes"] > 0
        # Gauge sections do not pollute the totals.
        assert totals["objects"] < 10**9

    def test_traced_peak_reports_bytes(self):
        with TracedPeak() as trace:
            # bytearray defeats constant folding: 256 real allocations.
            blob = [bytearray(1024) for _ in range(256)]
        assert trace.peak_bytes > 100_000
        assert trace.current_bytes >= 0
        del blob
        result, current, peak = traced_call(lambda: sum(range(1000)))
        assert result == 499500 and peak >= 0 and current >= 0


class TestLegacyMemoryModel:
    def test_context_restores_current_model(self):
        assert interning_enabled()
        with legacy_memory_model():
            assert not interning_enabled()
            a, b = vv(dc0=5), vv(dc0=5)
            assert a == b and a is not b
            assert isinstance(make_dep_table(), dict)
        assert interning_enabled()
        assert isinstance(make_dep_table(), DepTable)

    def test_legacy_run_is_event_identical(self):
        store = small_store()
        result = run_small_workload(store)
        events = store.sim.events_processed
        clear_intern_pool()
        with legacy_memory_model():
            legacy_store = small_store()
            legacy_result = run_small_workload(legacy_store)
        assert legacy_store.sim.events_processed == events
        assert legacy_result.ops_completed == result.ops_completed


class TestInterningUnderFaults:
    def test_crash_recover_campaign_does_not_leak_pool(self):
        from repro.faults import campaign, run_campaign

        spec = campaign("crash-head").with_updates(
            clients=4, records=25, duration=1.8, warmup=0.2
        )
        result = run_campaign(spec, seed=7)
        assert result.clean, result.format()
        stats = intern_stats()
        assert stats["entries"] <= stats["capacity"]
        assert stats["str_entries"] <= stats["capacity"]
        # The pool fully drains on clear: crash/recovery left no pinned
        # aliases that survive as stale entries.
        clear_intern_pool()
        assert intern_stats()["entries"] == 1  # canonical ZERO only

    def test_sanitize_twice_run_with_interning(self):
        from repro.analysis import sanitize_run

        report = sanitize_run(
            "chainreaction",
            seed=11,
            clients=2,
            duration=0.3,
            warmup=0.1,
            records=10,
            servers_per_site=3,
        )
        assert report.divergence is None
        assert report.events_processed[0] == report.events_processed[1]


class TestScaleBenchSmoke:
    def test_shrunk_scale_bench_shape_and_determinism(self):
        report = bench_scale(
            {
                "record_count": 100,
                "duration": 0.3,
                "n_clients": 4,
                "rate_repeats": 1,
            }
        )
        assert report["events_match"] and report["ops_match"]
        for arm_name in ("optimized", "legacy"):
            arm = report[arm_name]
            assert arm["events_processed"] > 0
            assert arm["traced_peak_bytes"] > 0
            assert arm["distinct_keys"] > 0
            assert arm["bytes_per_key"] > 0
        assert report["optimized"]["legacy_memory_model"] is False
        assert report["legacy"]["legacy_memory_model"] is True
        # At any scale the new layout must not cost memory.
        assert report["peak_bytes_reduction"] > 0.0
        assert report["bytes_per_key_reduction"] > 0.0
