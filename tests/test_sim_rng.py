"""Unit tests for deterministic RNG streams."""

from repro.sim import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_same_inputs_same_seed(self):
        assert derive_seed(42, "network") == derive_seed(42, "network")

    def test_different_labels_differ(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_different_roots_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_seed_fits_64_bits(self):
        assert 0 <= derive_seed(42, "x") < 2**64


class TestRngRegistry:
    def test_same_label_returns_same_stream_object(self):
        reg = RngRegistry(1)
        assert reg.stream("a") is reg.stream("a")

    def test_streams_reproducible_across_registries(self):
        a = RngRegistry(5).stream("clients")
        b = RngRegistry(5).stream("clients")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_streams_independent_of_creation_order(self):
        reg1 = RngRegistry(5)
        reg1.stream("x")
        first = [reg1.stream("y").random() for _ in range(5)]
        reg2 = RngRegistry(5)
        second = [reg2.stream("y").random() for _ in range(5)]
        assert first == second

    def test_different_labels_give_different_sequences(self):
        reg = RngRegistry(5)
        assert [reg.stream("a").random() for _ in range(5)] != [
            reg.stream("b").random() for _ in range(5)
        ]

    def test_fork_is_deterministic_and_distinct(self):
        reg = RngRegistry(5)
        fork1 = reg.fork("child")
        fork2 = RngRegistry(5).fork("child")
        assert fork1.root_seed == fork2.root_seed
        assert fork1.root_seed != reg.root_seed
