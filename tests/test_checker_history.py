"""Unit tests for operation histories."""

import pytest

from repro.checker import GET, PUT, History, Operation
from repro.errors import CheckerError
from repro.storage import VersionVector


def vv(**entries):
    return VersionVector(entries)


class TestOperation:
    def test_rejects_unknown_op(self):
        with pytest.raises(CheckerError):
            Operation("s", "scan", "k", None, vv(), 0.0, 1.0)

    def test_rejects_return_before_invoke(self):
        with pytest.raises(CheckerError):
            Operation("s", GET, "k", None, vv(), 2.0, 1.0)


class TestHistory:
    def test_add_and_iterate(self):
        h = History()
        h.add("s1", PUT, "k", "v", vv(dc0=1), 0.0, 1.0)
        h.add("s1", GET, "k", "v", vv(dc0=1), 1.0, 2.0)
        assert len(h) == 2
        assert [op.op for op in h] == [PUT, GET]

    def test_by_session_orders_by_invocation(self):
        h = History()
        h.add("s2", GET, "k", None, vv(), 5.0, 6.0)
        h.add("s1", PUT, "k", "v", vv(dc0=1), 0.0, 1.0)
        h.add("s2", GET, "k", None, vv(), 2.0, 3.0)
        grouped = h.by_session()
        assert list(grouped) == ["s1", "s2"]
        assert [op.t_invoke for op in grouped["s2"]] == [2.0, 5.0]

    def test_filters(self):
        h = History()
        h.add("s1", PUT, "a", 1, vv(dc0=1), 0, 1)
        h.add("s1", GET, "a", 1, vv(dc0=1), 1, 2)
        h.add("s1", PUT, "b", 2, vv(dc0=1), 2, 3)
        assert len(h.puts()) == 2
        assert len(h.puts("a")) == 1
        assert len(h.gets("a")) == 1
        assert h.keys() == ["a", "b"]
        assert h.sessions() == ["s1"]

    def test_validate_accepts_sequential_sessions(self):
        h = History()
        h.add("s1", PUT, "k", "v", vv(dc0=1), 0.0, 1.0)
        h.add("s1", GET, "k", "v", vv(dc0=1), 1.5, 2.0)
        h.validate()

    def test_validate_rejects_overlapping_ops_in_session(self):
        h = History()
        h.add("s1", PUT, "k", "v", vv(dc0=1), 0.0, 2.0)
        h.add("s1", GET, "k", "v", vv(dc0=1), 1.0, 3.0)
        with pytest.raises(CheckerError, match="overlapping"):
            h.validate()

    def test_validate_rejects_duplicate_put_versions(self):
        h = History()
        h.add("s1", PUT, "k", "v1", vv(dc0=1), 0.0, 1.0)
        h.add("s2", PUT, "k", "v2", vv(dc0=1), 0.0, 1.0)
        with pytest.raises(CheckerError, match="share"):
            h.validate()

    def test_validate_allows_same_version_on_different_keys(self):
        h = History()
        h.add("s1", PUT, "a", "v", vv(dc0=1), 0.0, 1.0)
        h.add("s2", PUT, "b", "v", vv(dc0=1), 0.0, 1.0)
        h.validate()
