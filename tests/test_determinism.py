"""Determinism: identical seeds produce identical executions.

The whole point of the discrete-event substrate is exact
reproducibility — a failing seed replays the same execution, message
for message. These tests run complete workloads twice and require
bit-identical outcomes, and check that different seeds actually differ.
"""

from repro.baselines import build_store
from repro.workload import WorkloadRunner, workload


def run_once(seed, protocol="chainreaction"):
    store = build_store(
        protocol,
        sites=("dc0", "dc1"),
        servers_per_site=4,
        chain_length=3,
        seed=seed,
        overrides={"service_time": 0.0} if protocol in ("chainreaction", "chain") else None,
    )
    spec = workload("A", record_count=20, value_size=16)
    result = WorkloadRunner(store, spec, n_clients=4, duration=0.4, warmup=0.1).run()
    fingerprint = [
        (op.session, op.op, op.key, op.version, round(op.t_invoke, 9), round(op.t_return, 9))
        for op in result.history
    ]
    return result, tuple(fingerprint), store


class TestDeterminism:
    def test_identical_seed_identical_history(self):
        r1, f1, _ = run_once(seed=42)
        r2, f2, _ = run_once(seed=42)
        assert r1.ops_completed == r2.ops_completed
        assert r1.throughput == r2.throughput
        assert f1 == f2

    def test_identical_seed_identical_network_stats(self):
        _, _, s1 = run_once(seed=42)
        _, _, s2 = run_once(seed=42)
        assert s1.network.stats.messages_sent == s2.network.stats.messages_sent
        assert s1.network.stats.bytes_sent == s2.network.stats.bytes_sent

    def test_different_seed_different_execution(self):
        _, f1, _ = run_once(seed=1)
        _, f2, _ = run_once(seed=2)
        assert f1 != f2

    def test_latency_percentiles_reproducible(self):
        r1, _, _ = run_once(seed=7)
        r2, _, _ = run_once(seed=7)
        assert r1.get_latency.percentile(99) == r2.get_latency.percentile(99)
        assert r1.put_latency.percentile(50) == r2.put_latency.percentile(50)

    def test_baseline_protocols_deterministic_too(self):
        for protocol in ("eventual", "quorum", "cops"):
            _, f1, _ = run_once(seed=11, protocol=protocol)
            _, f2, _ = run_once(seed=11, protocol=protocol)
            assert f1 == f2, protocol
