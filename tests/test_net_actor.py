"""Unit tests for actors: dispatch, timers, crash/recover, RPC, service time."""

import dataclasses
from typing import Any, ClassVar

import pytest

from repro.errors import RemoteError, RequestTimeout, StorageError
from repro.net import Actor, Address, FixedLatency, Message, Network
from repro.sim import Future, Simulator


@dataclasses.dataclass(frozen=True)
class Tick(Message):
    type_name: ClassVar[str] = "tick"
    n: int = 0


@dataclasses.dataclass(frozen=True)
class Mystery(Message):
    type_name: ClassVar[str] = "mystery"


class Echo(Actor):
    SERVICED_TYPES = frozenset({"tick"})

    def __init__(self, sim, network, address):
        super().__init__(sim, network, address)
        self.ticks = []
        self.unknown = []

    def on_tick(self, msg, src):
        self.ticks.append((msg.n, self.sim.now))

    def on_unhandled(self, msg, src):
        self.unknown.append(msg)

    def rpc_double(self, payload, src):
        return payload * 2

    def rpc_later(self, payload, src):
        fut = Future(self.sim)
        self.set_timer(0.5, fut.set_result, payload + 1)
        return fut

    def rpc_explode(self, payload, src):
        raise StorageError("server side boom")


@pytest.fixture
def pair(sim):
    net = Network(sim, lan=FixedLatency(0.001))
    a = Echo(sim, net, Address("dc0", "a"))
    b = Echo(sim, net, Address("dc0", "b"))
    return a, b


class TestDispatch:
    def test_handler_called_by_type_name(self, sim, pair):
        a, b = pair
        a.send(b.address, Tick(n=5))
        sim.run()
        assert b.ticks[0][0] == 5

    def test_unhandled_hook(self, sim, pair):
        a, b = pair
        a.send(b.address, Mystery())
        sim.run()
        assert len(b.unknown) == 1


class TestTimers:
    def test_timer_fires_after_delay(self, sim, pair):
        a, _ = pair
        fired = []
        a.set_timer(1.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.0]

    def test_cancelled_timer_does_not_fire(self, sim, pair):
        a, _ = pair
        fired = []
        handle = a.set_timer(1.0, lambda: fired.append(1))
        a.cancel_timer(handle)
        sim.run()
        assert fired == []

    def test_crash_cancels_timers(self, sim, pair):
        a, _ = pair
        fired = []
        a.set_timer(1.0, lambda: fired.append(1))
        a.crash()
        sim.run()
        assert fired == []


class TestCrashRecover:
    def test_crashed_actor_ignores_messages(self, sim, pair):
        a, b = pair
        b.crash()
        a.send(b.address, Tick(n=1))
        sim.run()
        assert b.ticks == []

    def test_crashed_actor_sends_nothing(self, sim, pair):
        a, b = pair
        a.crash()
        a.send(b.address, Tick(n=1))
        sim.run()
        assert b.ticks == []

    def test_recover_restores_messaging(self, sim, pair):
        a, b = pair
        b.crash()
        b.recover()
        a.send(b.address, Tick(n=2))
        sim.run()
        assert b.ticks[0][0] == 2

    def test_crash_fails_in_flight_rpcs(self, sim, pair):
        a, b = pair
        fut = a.call(b.address, "later", 1, timeout=5.0)
        sim.schedule(0.1, a.crash)
        sim.run()
        assert fut.failed()

    def test_crash_and_recover_idempotent(self, sim, pair):
        a, _ = pair
        a.crash()
        a.crash()
        a.recover()
        a.recover()
        assert not a.crashed


class TestRpc:
    def test_roundtrip(self, sim, pair):
        a, b = pair
        fut = a.call(b.address, "double", 21)
        sim.run()
        assert fut.result() == 42

    def test_future_returning_handler(self, sim, pair):
        a, b = pair
        fut = a.call(b.address, "later", 10)
        sim.run()
        assert fut.result() == 11

    def test_unknown_method_is_remote_error(self, sim, pair):
        a, b = pair
        fut = a.call(b.address, "nope", None)
        sim.run()
        with pytest.raises(RemoteError, match="nope"):
            fut.result()

    def test_handler_exception_propagates_as_remote_error(self, sim, pair):
        a, b = pair
        fut = a.call(b.address, "explode", None)
        sim.run()
        with pytest.raises(RemoteError, match="boom"):
            fut.result()

    def test_timeout_when_peer_down(self, sim, pair):
        a, b = pair
        b.crash()
        fut = a.call(b.address, "double", 1, timeout=0.5)
        sim.run()
        with pytest.raises(RequestTimeout):
            fut.result()
        assert sim.now >= 0.5

    def test_late_response_after_timeout_is_dropped(self, sim, pair):
        a, b = pair
        # RPC times out before the handler's deferred future resolves.
        fut = a.call(b.address, "later", 1, timeout=0.1)
        sim.run()
        assert fut.failed()  # and no crash from the late RpcResponse

    def test_call_from_crashed_actor_fails_immediately(self, sim, pair):
        a, b = pair
        a.crash()
        fut = a.call(b.address, "double", 1)
        assert fut.failed()


class TestServiceTime:
    def test_serviced_messages_queue(self, sim, pair):
        a, b = pair
        b.service_time = 0.010
        for i in range(3):
            a.send(b.address, Tick(n=i))
        sim.run()
        # arrival at 1ms, then 10ms service each, processed back to back
        times = [t for _, t in b.ticks]
        assert times[0] == pytest.approx(0.011)
        assert times[1] == pytest.approx(0.021)
        assert times[2] == pytest.approx(0.031)

    def test_unserviced_messages_bypass_queue(self, sim, pair):
        a, b = pair
        b.service_time = 0.010
        a.send(b.address, Tick(n=0))
        a.send(b.address, Mystery())  # not in SERVICED_TYPES
        sim.run()
        # mystery handled on arrival, before the tick finishes service
        assert len(b.unknown) == 1

    def test_idle_server_has_no_queueing_delay_beyond_service(self, sim, pair):
        a, b = pair
        b.service_time = 0.010
        a.send(b.address, Tick(n=0))
        sim.run()
        assert b.ticks[0][1] == pytest.approx(0.011)
