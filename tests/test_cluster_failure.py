"""Unit tests for the failure injector."""

import pytest

from repro.cluster import CrashEvent, FailureInjector, PartitionEvent
from repro.net import Actor, Address, FixedLatency, Network
from repro.sim import Simulator


@pytest.fixture
def setup(sim):
    net = Network(sim, lan=FixedLatency(0.001))
    actor = Actor(sim, net, Address("dc0", "a"))
    peer = Actor(sim, net, Address("dc0", "b"))
    return net, actor, peer


class TestCrashSchedule:
    def test_crash_at_time(self, sim, setup):
        net, actor, _ = setup
        injector = FailureInjector(sim, net)
        injector.schedule_crash(actor, at=1.0)
        sim.run(until=0.9)
        assert not actor.crashed
        sim.run(until=1.1)
        assert actor.crashed
        assert injector.injected_crashes == 1

    def test_recovery_at_time(self, sim, setup):
        net, actor, _ = setup
        injector = FailureInjector(sim, net)
        injector.schedule_crash(actor, at=1.0, recover_at=2.0)
        sim.run(until=3.0)
        assert not actor.crashed

    def test_recover_before_crash_rejected(self, sim, setup):
        net, actor, _ = setup
        injector = FailureInjector(sim, net)
        with pytest.raises(ValueError):
            injector.schedule_crash(actor, at=2.0, recover_at=1.0)

    def test_wipe_storage(self, sim, setup):
        from repro.storage import VersionedStore, VersionVector

        net, actor, _ = setup
        actor.store = VersionedStore()
        actor.store.apply("k", 1, VersionVector({"dc0": 1}))
        injector = FailureInjector(sim, net)
        injector.schedule_crash(actor, at=1.0, wipe_storage=True)
        sim.run(until=1.5)
        assert len(actor.store) == 0


class TestPartitionSchedule:
    def test_partition_and_heal(self, sim, setup):
        net, actor, peer = setup
        injector = FailureInjector(sim, net)
        injector.schedule_partition("dc0", "dc1", at=1.0, heal_at=2.0)
        sim.run(until=1.5)
        assert net._is_blocked(Address("dc0", "x"), Address("dc1", "y"))
        sim.run(until=2.5)
        assert not net._is_blocked(Address("dc0", "x"), Address("dc1", "y"))

    def test_heal_before_partition_rejected(self, sim, setup):
        net, _, _ = setup
        injector = FailureInjector(sim, net)
        with pytest.raises(ValueError):
            injector.schedule_partition("a", "b", at=2.0, heal_at=1.0)


class TestDeclarativeSchedule:
    def test_apply_mixed_events(self, sim, setup):
        net, actor, _ = setup
        injector = FailureInjector(sim, net)
        injector.apply(
            [
                CrashEvent(actor, at=1.0, recover_at=2.0),
                PartitionEvent("dc0", "dc1", at=1.5, heal_at=2.5),
            ]
        )
        sim.run(until=3.0)
        assert injector.injected_crashes == 1
        assert injector.injected_partitions == 1
        assert len(injector.log) == 4

    def test_log_is_chronological(self, sim, setup):
        net, actor, _ = setup
        injector = FailureInjector(sim, net)
        injector.schedule_crash(actor, at=2.0)
        injector.schedule_partition("a", "b", at=1.0)
        sim.run(until=3.0)
        assert "partition" in injector.log[0]
        assert "crash" in injector.log[1]
