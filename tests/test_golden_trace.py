"""Golden-trace regression: kernel/fabric rewrites cannot reorder events.

The snapshot below was recorded on the seed (pre-PR-1) code. Any
optimization of the kernel, network fabric, or message sizing must keep
a fixed-seed run *byte-identical*: same number of events fired, same
messages on the wire, same bytes accounted, same summary row. If this
test fails after a perf change, the change altered simulation behaviour
— not just its speed — and must be fixed, not re-recorded. (Re-record
only for deliberate protocol/semantics changes, and say so in the PR.)
"""

import pytest

from repro.baselines import build_store
from repro.workload import WorkloadRunner, workload

#: Recorded on the seed code (commit 43e493d) with the exact
#: configuration in _golden_run below. BYTES re-recorded for the error
#: taxonomy redesign: every rpc-response now carries a ``retryable``
#: flag on the wire (+1 accounted byte each); event count, message
#: count, and the summary row are unchanged — the protocol's event
#: order is untouched.
GOLDEN_EVENTS_PROCESSED = 15345
GOLDEN_MESSAGES_SENT = 8641
GOLDEN_BYTES_SENT = 1240844
GOLDEN_SUMMARY_ROW = {
    "protocol": "chainreaction",
    "workload": "B",
    "clients": 3,
    "throughput_ops_s": 4042.0,
    "get_p50_ms": 0.7051737279650527,
    "get_p99_ms": 0.9363533833093021,
    "put_p50_ms": 1.546503094938062,
    "put_p99_ms": 2.02830280082414,
    "errors": 0,
}


def _golden_run():
    """An E1-style mini-workload: geo deployment, read-heavy YCSB-B."""
    store = build_store(
        "chainreaction",
        sites=("dc0", "dc1"),
        servers_per_site=4,
        chain_length=3,
        seed=1234,
    )
    spec = workload("B", record_count=25, value_size=32)
    result = WorkloadRunner(
        store, spec, n_clients=3, duration=0.5, warmup=0.1
    ).run()
    return store, result


class TestGoldenTrace:
    def test_fixed_seed_run_matches_recorded_snapshot(self):
        store, result = _golden_run()
        observed = (
            store.sim.events_processed,
            store.network.stats.messages_sent,
            store.network.stats.bytes_sent,
            result.summary_row(),
        )
        assert observed == (
            GOLDEN_EVENTS_PROCESSED,
            GOLDEN_MESSAGES_SENT,
            GOLDEN_BYTES_SENT,
            GOLDEN_SUMMARY_ROW,
        )

    def test_latency_percentiles_exact(self):
        # Percentiles flow through the latency reservoirs — a second,
        # independent angle on event-order stability.
        _, result = _golden_run()
        assert result.get_latency.percentile(50) * 1000 == pytest.approx(
            GOLDEN_SUMMARY_ROW["get_p50_ms"], abs=0.0
        )
        assert result.put_latency.percentile(99) * 1000 == pytest.approx(
            GOLDEN_SUMMARY_ROW["put_p99_ms"], abs=0.0
        )
