"""Tests for the public API surface and the error hierarchy."""

import pytest

import repro
from repro import errors
from repro.api import ClientSession, Datastore, GetResult, PutResult
from repro.storage import VersionVector


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in errors.__all__:
            exc_type = getattr(errors, name)
            assert issubclass(exc_type, errors.ReproError), name

    def test_network_errors_grouped(self):
        assert issubclass(errors.RequestTimeout, errors.NetworkError)
        assert issubclass(errors.RemoteError, errors.NetworkError)
        assert issubclass(errors.AddressUnknownError, errors.NetworkError)

    def test_cluster_errors_grouped(self):
        assert issubclass(errors.ChainUnavailableError, errors.ClusterError)
        assert issubclass(errors.NotResponsibleError, errors.ClusterError)

    def test_catching_base_class_works(self):
        with pytest.raises(errors.ReproError):
            raise errors.RequestTimeout("x")

    def test_disposition_split(self):
        assert issubclass(errors.RequestTimeout, errors.TransientError)
        assert issubclass(errors.ReplicaUnavailable, errors.TransientError)
        assert issubclass(errors.ChainUnavailableError, errors.TransientError)
        assert issubclass(errors.SessionClosedError, errors.PermanentError)
        assert issubclass(errors.UnsupportedOperationError, errors.PermanentError)
        assert issubclass(errors.ConfigError, errors.PermanentError)

    def test_retryable_flags(self):
        assert errors.RequestTimeout("x").retryable is True
        assert errors.ReplicaUnavailable("x").retryable is True
        assert errors.SessionClosedError("x").retryable is False
        assert errors.ConfigError("x").retryable is False

    def test_remote_error_carries_instance_disposition(self):
        assert errors.RemoteError("boom").retryable is True
        wrapped = errors.RemoteError("bad config", retryable=False)
        assert wrapped.retryable is False
        # still catchable as transient (class-level), so retry layers
        # must consult the instance flag — which is the documented contract
        assert isinstance(wrapped, errors.TransientError)


class TestResultTypes:
    def test_get_result_defaults(self):
        r = GetResult("k", None, VersionVector())
        assert r.stable is True
        assert r.served_by == ""

    def test_put_result_defaults(self):
        r = PutResult("k", VersionVector({"dc0": 1}))
        assert r.stable is False

    def test_results_are_immutable(self):
        r = GetResult("k", "v", VersionVector())
        with pytest.raises(AttributeError):
            r.value = "other"


class TestAbstractSurface:
    def test_client_session_is_abstract(self):
        session = ClientSession()
        with pytest.raises(NotImplementedError):
            session.get("k")
        with pytest.raises(NotImplementedError):
            session.put("k", 1)
        assert session.metadata_bytes() == 0

    def test_datastore_is_abstract(self):
        store = Datastore()
        with pytest.raises(NotImplementedError):
            store.session()
        with pytest.raises(NotImplementedError):
            _ = store.sites


class TestPackageSurface:
    def test_version_string(self):
        assert repro.__version__

    def test_top_level_exports(self):
        assert repro.ChainReactionStore is not None
        assert repro.ChainReactionConfig is not None

    def test_quickstart_docstring_pattern_works(self):
        store = repro.ChainReactionStore(
            repro.ChainReactionConfig(servers_per_site=3, chain_length=2, ack_k=1, seed=1)
        )
        session = store.session()
        fut = session.put("photo", "beach.jpg")
        store.run(until=1.0)
        assert fut.result().version.total() == 1
