"""Tests for the log-structured durable store."""

import pytest
from hypothesis import given, strategies as st

from repro.storage import AppendLog, DurableStore, LogEntry, VersionVector, VersionedStore


def vv(**entries):
    return VersionVector(entries)


class TestLogging:
    def test_applied_writes_are_logged(self):
        store = DurableStore()
        store.apply("k", "v1", vv(dc0=1))
        store.apply("k", "v2", vv(dc0=2))
        assert len(store.log) == 2
        assert store.log.entries()[0].key == "k"

    def test_ignored_writes_are_not_logged(self):
        store = DurableStore()
        store.apply("k", "v2", vv(dc0=2))
        store.apply("k", "v1", vv(dc0=1))  # dominated
        store.apply("k", "v2", vv(dc0=2))  # duplicate
        assert len(store.log) == 1

    def test_tombstones_logged(self):
        store = DurableStore()
        store.apply("k", "v", vv(dc0=1))
        store.delete("k", vv(dc0=2))
        assert len(store.log) == 2

    def test_log_byte_accounting(self):
        store = DurableStore()
        store.apply("k", "x" * 100, vv(dc0=1))
        assert store.log.bytes_written > 100


class TestRecovery:
    def test_clear_keeps_log(self):
        store = DurableStore()
        store.apply("k", "v", vv(dc0=1))
        store.clear()
        assert len(store) == 0
        assert len(store.log) == 1

    def test_replay_restores_state(self):
        store = DurableStore()
        store.apply("a", 1, vv(dc0=1))
        store.apply("b", 2, vv(dc0=1))
        store.apply("a", 3, vv(dc0=2))
        image = store.checksum_state()
        store.clear()
        replayed = store.recover_from_log()
        assert replayed == 3
        assert store.checksum_state() == image

    def test_replay_is_idempotent(self):
        store = DurableStore()
        store.apply("a", 1, vv(dc0=1))
        image = store.checksum_state()
        store.recover_from_log()
        store.recover_from_log()
        assert store.checksum_state() == image
        assert len(store.log) == 1  # replay never re-logs

    def test_replay_restores_conflict_resolution(self):
        store = DurableStore()
        store.apply("k", "x", vv(dc0=1))
        store.apply("k", "y", vv(dc1=1))  # concurrent: LWW merge
        image = store.checksum_state()
        store.clear()
        store.recover_from_log()
        assert store.checksum_state() == image

    def test_wiped_log_recovers_nothing(self):
        store = DurableStore()
        store.apply("k", "v", vv(dc0=1))
        store.clear()
        store.log.wipe()
        assert store.recover_from_log() == 0
        assert len(store) == 0


class TestCompaction:
    def test_compaction_keeps_only_live_image(self):
        store = DurableStore(min_compact_entries=1, compact_ratio=1.0)
        for i in range(10):
            store.apply("k", i, vv(dc0=i + 1))
        assert len(store.log) == 10
        reclaimed = store.compact()
        assert reclaimed == 9
        assert len(store.log) == 1

    def test_recovery_after_compaction(self):
        store = DurableStore()
        for i in range(10):
            store.apply("k", i, vv(dc0=i + 1))
        store.apply("other", "x", vv(dc0=1))
        store.compact()
        image = store.checksum_state()
        store.clear()
        store.recover_from_log()
        assert store.checksum_state() == image

    def test_should_compact_policy(self):
        store = DurableStore(min_compact_entries=8, compact_ratio=2.0)
        for i in range(7):
            store.apply("k", i, vv(dc0=i + 1))
        assert not store.should_compact()  # below min entries
        store.apply("k", 7, vv(dc0=8))
        assert store.should_compact()  # 8 entries, 1 live, ratio 8 > 2
        assert store.maybe_compact() == 7
        assert not store.should_compact()

    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            DurableStore(compact_ratio=0.5)

    @given(
        st.lists(
            st.tuples(st.sampled_from(["a", "b"]), st.integers(0, 99)),
            min_size=1,
            max_size=20,
        )
    )
    def test_compaction_never_changes_state(self, writes):
        store = DurableStore()
        for i, (key, value) in enumerate(writes):
            store.apply(key, value, vv(dc0=i + 1))
        image = store.checksum_state()
        store.compact()
        assert store.checksum_state() == image
        store.clear()
        store.recover_from_log()
        assert store.checksum_state() == image


class TestDurableChainNode:
    def test_crash_wipe_recover_restores_data(self):
        from helpers import make_store, run_op

        store = make_store(durable_storage=True, servers_per_site=4)
        s = store.session()
        for i in range(8):
            run_op(store, s.put(f"k{i}", i))
        store.run(until=store.sim.now + 0.5)
        victim = store.servers()[0]
        keys_held = set(victim.store.keys())
        victim.crash()
        victim.store.clear()  # crash loses memory, not the log
        victim.recover()
        store.run(until=store.sim.now + 2.0)
        assert keys_held <= set(victim.store.keys())
        assert victim.store.recoveries == 1

    def test_compaction_runs_under_write_load(self):
        from helpers import make_store, run_op

        store = make_store(
            durable_storage=True, servers_per_site=4, compaction_interval=0.1
        )
        s = store.session()
        for i in range(120):
            run_op(store, s.put("hot", i))
        store.run(until=store.sim.now + 1.0)
        assert any(n.store.compactions > 0 for n in store.servers())
        # data still correct after compactions
        from helpers import run_op as ro

        assert ro(store, s.get("hot")).value == 119

    def test_reads_correct_after_recovery_cycle(self):
        from helpers import make_store, run_op

        store = make_store(durable_storage=True, servers_per_site=4)
        s = store.session()
        for i in range(6):
            run_op(store, s.put(f"k{i}", i))
        store.run(until=store.sim.now + 0.5)
        victim = store.servers()[0]
        victim.crash()
        victim.store.clear()
        store.run(until=store.sim.now + 1.5)  # removed from view
        victim.recover()
        store.run(until=store.sim.now + 2.0)  # re-admitted + repaired
        for i in range(6):
            assert run_op(store, s.get(f"k{i}"), extra=2.0).value == i
