"""Tests for causally consistent snapshot reads (multi_get)."""

import pytest

from helpers import make_geo_store, make_store, run_op

from repro.api import SnapshotResult
from repro.errors import RequestTimeout
from repro.sim import spawn
from repro.storage import VersionVector


class TestBasics:
    def test_snapshot_of_unwritten_keys(self):
        store = make_store()
        s = store.session()
        snap = run_op(store, s.multi_get(["a", "b"]))
        assert snap.values == {"a": None, "b": None}
        assert snap.versions["a"].is_zero()
        assert snap.rounds == 1

    def test_snapshot_returns_stable_values(self):
        store = make_store()
        s = store.session()
        run_op(store, s.put("a", 1))
        run_op(store, s.put("b", 2))
        store.run(until=store.sim.now + 0.5)  # stabilise
        snap = run_op(store, s.multi_get(["a", "b"]))
        assert snap["a"] == 1 and snap["b"] == 2
        assert snap.versions["a"] == VersionVector({"dc0": 1})

    def test_snapshot_excludes_unstable_writes(self):
        """A write acked at k=1 but not yet at the tail is invisible to
        snapshots — they serve the stable frontier."""
        store = make_store(ack_k=1)
        s = store.session()
        run_op(store, s.put("a", "old"))
        store.run(until=store.sim.now + 0.5)
        fut = s.put("a", "new")
        run_op(store, fut)  # acked at head only
        snap = run_op(store, s.multi_get(["a"]))
        assert snap["a"] == "old"

    def test_snapshot_sees_deleted_keys_as_absent(self):
        store = make_store()
        s = store.session()
        run_op(store, s.put("a", 1))
        run_op(store, s.delete("a"))
        store.run(until=store.sim.now + 0.5)
        snap = run_op(store, s.multi_get(["a"]))
        assert snap["a"] is None

    def test_duplicate_keys_tolerated(self):
        store = make_store()
        s = store.session()
        run_op(store, s.put("a", 1))
        store.run(until=store.sim.now + 0.5)
        snap = run_op(store, s.multi_get(["a", "a"]))
        assert snap["a"] == 1

    def test_result_indexable(self):
        result = SnapshotResult(values={"k": 5}, versions={"k": VersionVector()})
        assert result["k"] == 5


class TestCausalConsistency:
    def test_never_effect_without_cause_single_dc(self):
        """Writer updates a then b; a snapshot reading [b, a] must never
        pair a new b with an older a."""
        store = make_store(ack_k=1)
        sim = store.sim
        w = store.session(session_id="w")
        r = store.session(session_id="r")
        anomalies = [0]
        taken = [0]

        def writer():
            for i in range(50):
                yield w.put("a", i)
                yield w.put("b", i)
                yield 0.001

        def reader():
            while sim.now < 0.25:
                snap = yield r.multi_get(["b", "a"])
                if snap["b"] is not None:
                    a_val = -1 if snap["a"] is None else snap["a"]
                    if a_val < snap["b"]:
                        anomalies[0] += 1
                taken[0] += 1
                yield 0.0004

        spawn(sim, writer())
        spawn(sim, reader())
        store.run(until=1.0)
        assert taken[0] > 50
        assert anomalies[0] == 0

    def test_never_effect_without_cause_geo(self):
        store = make_geo_store(ack_k=2)
        sim = store.sim
        w = store.session("dc0", session_id="w")
        r = store.session("dc1", session_id="r")
        anomalies = [0]
        taken = [0]

        def writer():
            for i in range(30):
                yield w.put("a", i)
                yield w.put("b", i)
                yield 0.004

        def reader():
            while sim.now < 0.5:
                snap = yield r.multi_get(["b", "a"])
                if snap["b"] is not None:
                    a_val = -1 if snap["a"] is None else snap["a"]
                    if a_val < snap["b"]:
                        anomalies[0] += 1
                taken[0] += 1
                yield 0.002

        spawn(sim, writer())
        spawn(sim, reader())
        store.run(until=2.0)
        assert taken[0] > 30
        assert anomalies[0] == 0

    def test_snapshot_versions_respect_dep_floors(self):
        """Directly verify the floor validation: b's stable record carries
        its dependency on a, and the snapshot's a dominates it."""
        store = make_store(ack_k=1)
        s = store.session()
        run_op(store, s.put("a", "v"))
        run_op(store, s.put("b", "w"))  # b deps on a (unstable at put time)
        store.run(until=store.sim.now + 0.5)
        snap = run_op(store, s.multi_get(["a", "b"]))
        assert snap.versions["a"].dominates(VersionVector({"dc0": 1}))


class TestFailureModes:
    def test_snapshot_fails_when_cluster_dark(self):
        store = make_store(max_retries=2, op_timeout=0.05, client_retry_backoff=0.01)
        s = store.session()
        for node in store.servers():
            node.crash()
        store.managers["dc0"].crash()
        fut = s.multi_get(["a"])
        store.run(until=5.0)
        assert fut.failed()
        with pytest.raises(RequestTimeout):
            fut.result()

    def test_snapshot_survives_single_server_crash(self):
        store = make_store(servers_per_site=5)
        s = store.session()
        run_op(store, s.put("a", 1))
        run_op(store, s.put("b", 2))
        store.run(until=store.sim.now + 0.5)
        store.servers()[0].crash()
        store.run(until=store.sim.now + 2.0)
        snap = run_op(store, s.multi_get(["a", "b"]), extra=3.0)
        assert snap["a"] == 1 and snap["b"] == 2


class TestOtherProtocols:
    def test_baselines_do_not_support_snapshots(self):
        from helpers import build

        from repro.api import CAP_SNAPSHOT_READS
        from repro.errors import UnsupportedOperationError

        for protocol in ("eventual", "quorum", "cops"):
            store = build(protocol)
            assert CAP_SNAPSHOT_READS not in store.capabilities
            session = store.session()
            with pytest.raises(UnsupportedOperationError):
                session.multi_get(["a"])
