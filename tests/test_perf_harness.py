"""Tests for the PR-1 performance work: size memoization, the kernel's
O(1) pending counter and heap compaction, the fire-and-forget post API,
the FIFO-horizon sweep, and the parallel benchmark runner."""

import dataclasses
from typing import ClassVar

import pytest

from repro.bench import QUICK, consistency_table, latency_run, throughput_sweep
from repro.net import Address, FixedLatency, Message, Network
from repro.net.network import _HORIZON_SWEEP_INTERVAL
from repro.sim import Simulator

TINY = dataclasses.replace(
    QUICK,
    record_count=20,
    duration=0.3,
    warmup=0.1,
    client_counts=(2,),
    latency_clients=2,
    probe_pairs=3,
    probe_rounds=4,
)


@dataclasses.dataclass(frozen=True)
class Memoed(Message):
    type_name: ClassVar[str] = "memoed"
    memoize_size: ClassVar[bool] = True
    body: str = ""


@dataclasses.dataclass(frozen=True)
class Plain(Message):
    type_name: ClassVar[str] = "plain"
    body: str = ""


class TestSizeMemoization:
    def test_memoized_size_is_stable_and_correct(self):
        msg = Memoed(body="hello")
        first = msg.size_bytes()
        assert first == Plain(body="hello").size_bytes()
        assert msg.size_bytes() == first

    def test_messages_are_frozen(self):
        # Messages are immutable once constructed — that is what makes
        # the size memo (and copy_size_from) sound.
        msg = Memoed(body="ab")
        msg.size_bytes()
        with pytest.raises(dataclasses.FrozenInstanceError):
            msg.body = "a much longer body than before"
        with pytest.raises(dataclasses.FrozenInstanceError):
            Plain(body="ab").body = "other"

    def test_unsized_messages_do_not_cache(self):
        msg = Plain(body="ab")
        small = msg.size_bytes()
        assert "_size_memo" not in msg.__dict__
        assert dataclasses.replace(msg, body="xyz!").size_bytes() == small + 2

    def test_copy_size_from_carries_memo(self):
        a = Memoed(body="payload")
        a.size_bytes()
        b = Memoed(body="payload")
        b.copy_size_from(a)
        assert b.size_bytes() == a.size_bytes()

    def test_copy_size_from_unsized_source_is_noop(self):
        a = Memoed(body="payload")
        b = Memoed(body="payload")
        b.copy_size_from(a)  # a never sized: nothing to carry
        assert b.size_bytes() == Plain(body="payload").size_bytes()

    def test_protocol_chain_put_memoizes(self):
        from repro.core.messages import ChainPut

        msg = ChainPut(key="k", value="v" * 32)
        size = msg.size_bytes()
        assert msg.size_bytes() == size
        assert "_size_memo" in msg.__dict__


class TestKernelCounters:
    def test_pending_counter_tracks_schedule_and_pop(self, sim):
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
        assert sim.pending_events() == 5
        handles[0].cancel()
        assert sim.pending_events() == 4
        sim.run()
        assert sim.pending_events() == 0

    def test_post_events_counted_and_fire_in_order(self, sim):
        order = []
        sim.post(2.0, order.append, 2)
        sim.post(1.0, order.append, 1)
        assert sim.pending_events() == 2
        sim.run()
        assert order == [1, 2]
        assert sim.events_processed == 2

    def test_post_interleaves_fifo_with_schedule(self, sim):
        order = []
        sim.schedule(1.0, order.append, "a")
        sim.post(1.0, order.append, "b")
        sim.schedule(1.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_post_rejects_past(self, sim):
        from repro.errors import SimulationError

        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.post(-0.5, lambda: None)
        with pytest.raises(SimulationError):
            sim.post_at(0.5, lambda: None)

    def test_mass_cancellation_compacts_heap(self, sim):
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(1000)]
        keep = sim.schedule(2000.0, lambda: None)
        for handle in handles:
            handle.cancel()
        # Compaction kicked in: the heap no longer holds ~1000 dead entries.
        assert len(sim._heap) < 100
        assert sim.pending_events() == 1
        sim.run()
        assert sim.events_processed == 1
        assert keep.cancelled is False

    def test_cancel_after_fire_keeps_counters_sane(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        handle.cancel()  # late cancel of an already-fired event
        assert sim.pending_events() == 0
        sim.schedule(1.0, lambda: None)
        assert sim.pending_events() == 1


class TestHorizonSweep:
    def test_stale_fifo_horizons_are_swept(self, sim):
        net = Network(sim, lan=FixedLatency(0.001))
        a, b = Address("dc0", "a"), Address("dc0", "b")
        net.register(a, lambda m, s: None)
        net.register(b, lambda m, s: None)
        # Many transient links: send one message per fake client address.
        for i in range(200):
            src = Address("dc0", f"client-{i}")
            net.register(src, lambda m, s: None)
            net.send(src, b, Plain(body="x"))
        sim.run()
        assert len(net._fifo_horizon) == 200
        # Let virtual time move past every transient horizon, then keep
        # one link warm and push total sends past the sweep interval.
        sim.schedule(1.0, lambda: None)
        sim.run()
        for _ in range(_HORIZON_SWEEP_INTERVAL):
            net.send(a, b, Plain(body="x"))
        sim.run()
        # All transient-link horizons are in the past and were dropped.
        assert len(net._fifo_horizon) <= 2

    def test_fifo_order_survives_sweep(self, sim):
        from repro.net import UniformLatency

        net = Network(sim, lan=UniformLatency(0.001, 0.050))
        a, b = Address("dc0", "a"), Address("dc0", "b")
        inbox = []
        net.register(a, lambda m, s: None)
        net.register(b, lambda m, s: inbox.append(m.body))
        for i in range(_HORIZON_SWEEP_INTERVAL + 100):
            net.send(a, b, Plain(body=i))
        sim.run()
        assert inbox == list(range(_HORIZON_SWEEP_INTERVAL + 100))


class TestParallelRunner:
    def test_throughput_sweep_parallel_matches_serial(self):
        protocols = ("chainreaction", "eventual")
        serial = throughput_sweep(protocols, "B", TINY)
        parallel = throughput_sweep(protocols, "B", TINY, parallel=True)
        assert parallel == serial

    def test_consistency_table_parallel_matches_serial(self):
        protocols = ("chainreaction", "eventual")
        serial = consistency_table(protocols, TINY, sites=("dc0", "dc1"))
        parallel = consistency_table(protocols, TINY, sites=("dc0", "dc1"), parallel=True)
        assert parallel == serial

    def test_latency_run_parallel_matches_serial(self):
        protocols = ("chainreaction", "eventual")
        serial = latency_run(protocols, "B", TINY)
        parallel = latency_run(protocols, "B", TINY, parallel=True)
        assert set(parallel) == set(serial)
        for protocol in protocols:
            assert parallel[protocol].ops_completed == serial[protocol].ops_completed
            assert parallel[protocol].get_latency.percentile(99) == serial[
                protocol
            ].get_latency.percentile(99)
            # Live deployments cannot cross the process boundary.
            assert parallel[protocol].store is None


class TestPerfHarness:
    def test_event_kernel_bench_reports_speedup(self):
        from repro.perf import bench_event_kernel

        result = bench_event_kernel(n_events=5_000, repeats=1)
        assert result["baseline_events_per_sec"] > 0
        assert result["optimized_events_per_sec"] > 0
        assert result["speedup"] > 0

    def test_legacy_simulator_matches_kernel_semantics(self):
        from repro.perf import LegacySimulator

        legacy, current = LegacySimulator(), Simulator()
        for sim in (legacy, current):
            order = []
            sim.schedule(2.0, order.append, 2)
            sim.schedule(1.0, order.append, 1)
            handle = sim.schedule(1.5, order.append, 99)
            handle.cancel()
            sim.run()
            assert order == [1, 2]
            assert sim.events_processed == 2
            assert sim.now == 2.0

    def test_collect_report_shape(self):
        from repro.perf import collect_report

        report = collect_report(n_events=2_000, repeats=1, include_end_to_end=False)
        assert set(report) >= {"meta", "event_kernel", "network_send", "message_sizing"}
        assert report["message_sizing"]["memoization_speedup"] > 1.0

    def test_profile_call_returns_rows(self):
        from repro.perf import format_profile_rows, profile_call

        result, rows = profile_call(lambda: sum(range(1000)), top=5)
        assert result == sum(range(1000))
        assert rows and all("function" in row for row in rows)
        assert "function" in format_profile_rows(rows)
