"""Unit tests for link latency models."""

import random

import pytest

from repro.net import (
    FixedLatency,
    LogNormalLatency,
    NormalLatency,
    UniformLatency,
    lan_latency,
    wan_latency,
)


@pytest.fixture
def rng():
    return random.Random(123)


class TestFixedLatency:
    def test_always_returns_delay(self, rng):
        model = FixedLatency(0.005)
        assert all(model.sample(rng) == 0.005 for _ in range(10))
        assert model.mean() == 0.005

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedLatency(-1)


class TestUniformLatency:
    def test_samples_within_bounds(self, rng):
        model = UniformLatency(0.001, 0.002)
        for _ in range(200):
            assert 0.001 <= model.sample(rng) <= 0.002

    def test_mean(self):
        assert UniformLatency(0.0, 2.0).mean() == 1.0

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(2.0, 1.0)


class TestNormalLatency:
    def test_truncated_at_floor(self, rng):
        model = NormalLatency(mu=0.001, sigma=0.01)
        assert all(model.sample(rng) >= 0.0001 for _ in range(500))

    def test_custom_floor(self, rng):
        model = NormalLatency(mu=0.001, sigma=0.01, floor=0.0005)
        assert all(model.sample(rng) >= 0.0005 for _ in range(500))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            NormalLatency(0, 1)


class TestLogNormalLatency:
    def test_all_samples_positive(self, rng):
        model = LogNormalLatency(median=0.040)
        assert all(model.sample(rng) > 0 for _ in range(500))

    def test_empirical_median_near_parameter(self, rng):
        model = LogNormalLatency(median=0.040, sigma=0.2)
        samples = sorted(model.sample(rng) for _ in range(4001))
        assert samples[2000] == pytest.approx(0.040, rel=0.1)

    def test_mean_exceeds_median(self):
        model = LogNormalLatency(median=0.040, sigma=0.5)
        assert model.mean() > 0.040

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LogNormalLatency(median=0)


class TestDefaults:
    def test_lan_is_submillisecond(self, rng):
        model = lan_latency()
        assert sum(model.sample(rng) for _ in range(100)) / 100 < 0.001

    def test_wan_much_slower_than_lan(self):
        assert wan_latency().mean() > 20 * lan_latency().mean()
