"""Unit tests for link latency models."""

import random

import pytest

from repro.net import (
    WAN_LATENCY_FLOOR,
    FixedLatency,
    LogNormalLatency,
    NormalLatency,
    ScaledLatency,
    UniformLatency,
    lan_latency,
    wan_latency,
)


@pytest.fixture
def rng():
    return random.Random(123)


class TestFixedLatency:
    def test_always_returns_delay(self, rng):
        model = FixedLatency(0.005)
        assert all(model.sample(rng) == 0.005 for _ in range(10))
        assert model.mean() == 0.005

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedLatency(-1)


class TestUniformLatency:
    def test_samples_within_bounds(self, rng):
        model = UniformLatency(0.001, 0.002)
        for _ in range(200):
            assert 0.001 <= model.sample(rng) <= 0.002

    def test_mean(self):
        assert UniformLatency(0.0, 2.0).mean() == 1.0

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(2.0, 1.0)


class TestNormalLatency:
    def test_truncated_at_floor(self, rng):
        model = NormalLatency(mu=0.001, sigma=0.01)
        assert all(model.sample(rng) >= 0.0001 for _ in range(500))

    def test_custom_floor(self, rng):
        model = NormalLatency(mu=0.001, sigma=0.01, floor=0.0005)
        assert all(model.sample(rng) >= 0.0005 for _ in range(500))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            NormalLatency(0, 1)


class TestLogNormalLatency:
    def test_all_samples_positive(self, rng):
        model = LogNormalLatency(median=0.040)
        assert all(model.sample(rng) > 0 for _ in range(500))

    def test_empirical_median_near_parameter(self, rng):
        model = LogNormalLatency(median=0.040, sigma=0.2)
        samples = sorted(model.sample(rng) for _ in range(4001))
        assert samples[2000] == pytest.approx(0.040, rel=0.1)

    def test_mean_exceeds_median(self):
        model = LogNormalLatency(median=0.040, sigma=0.5)
        assert model.mean() > 0.040

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LogNormalLatency(median=0)


class TestMinLatency:
    """``min_latency()`` must be a true lower bound on every sample —
    the sharded engine's conservative lookahead is only sound if no
    draw can ever undercut it."""

    def test_fixed_floor_is_delay(self):
        assert FixedLatency(0.005).min_latency() == 0.005

    def test_uniform_floor_is_low(self):
        assert UniformLatency(0.001, 0.002).min_latency() == 0.001

    def test_normal_floor_is_truncation_floor(self):
        assert NormalLatency(0.001, 0.01).min_latency() == 0.0001
        assert NormalLatency(0.001, 0.01, floor=0.0005).min_latency() == 0.0005

    def test_lognormal_floor_bounds_samples(self, rng):
        model = LogNormalLatency(median=0.040, sigma=0.1)
        floor = model.min_latency()
        assert 0 < floor < 0.040
        assert all(model.sample(rng) >= floor for _ in range(5000))

    def test_lognormal_floor_scales_with_median(self):
        assert LogNormalLatency(0.080, sigma=0.1).min_latency() == pytest.approx(
            2 * LogNormalLatency(0.040, sigma=0.1).min_latency()
        )

    def test_scaled_floor_scales_base(self):
        base = UniformLatency(0.001, 0.002)
        assert ScaledLatency(base, 3.0).min_latency() == pytest.approx(0.003)

    def test_wan_floor_constant_matches_default_model(self):
        assert WAN_LATENCY_FLOOR == pytest.approx(wan_latency().min_latency())
        assert 0 < WAN_LATENCY_FLOOR < wan_latency().mean()

    def test_default_wan_samples_respect_constant(self, rng):
        model = wan_latency()
        assert all(model.sample(rng) >= WAN_LATENCY_FLOOR for _ in range(5000))


class TestDefaults:
    def test_lan_is_submillisecond(self, rng):
        model = lan_latency()
        assert sum(model.sample(rng) for _ in range(100)) / 100 < 0.001

    def test_wan_much_slower_than_lan(self):
        assert wan_latency().mean() > 20 * lan_latency().mean()
