"""Session lifecycle, capability negotiation, and degraded reads."""

import pytest

from helpers import build, make_store, run_op

from repro.api import (
    CAP_DEGRADED_READS,
    CAP_DURABLE_STORAGE,
    CAP_SNAPSHOT_READS,
    CAP_STABILITY,
    CAP_TRACING,
)
from repro.errors import SessionClosedError


class TestSessionLifecycle:
    def test_operations_rejected_after_close(self):
        store = make_store()
        s = store.session()
        s.close()
        assert s.closed
        with pytest.raises(SessionClosedError):
            s.get("k")
        with pytest.raises(SessionClosedError):
            s.put("k", "v")

    def test_close_is_idempotent(self):
        store = make_store()
        s = store.session()
        s.close()
        s.close()
        assert s.closed

    def test_context_manager_closes(self):
        store = make_store()
        with store.session() as s:
            fut = s.put("k", "v")
            store.run(until=1.0)
            assert fut.result().version.total() == 1
        assert s.closed

    def test_sessions_lists_only_open(self):
        store = make_store()
        a = store.session()
        b = store.session()
        assert set(store.sessions()) == {a, b}
        a.close()
        assert store.sessions() == [b]

    def test_shutdown_closes_everything(self):
        store = make_store()
        a = store.session()
        b = store.session()
        store.shutdown()
        assert a.closed and b.closed
        assert store.sessions() == []

    def test_store_context_manager_shuts_down(self):
        with make_store() as store:
            s = store.session()
        assert s.closed

    def test_baseline_sessions_share_lifecycle(self):
        for protocol in ("eventual", "quorum", "cops"):
            store = build(protocol)
            with store.session() as s:
                run_op(store, s.put("k", "v"))
            assert s.closed
            with pytest.raises(SessionClosedError):
                s.get("k")


class TestCapabilities:
    def test_chainreaction_advertises_full_set(self):
        caps = make_store().capabilities
        assert CAP_SNAPSHOT_READS in caps
        assert CAP_STABILITY in caps
        assert CAP_TRACING in caps
        assert CAP_DEGRADED_READS in caps
        assert CAP_DURABLE_STORAGE not in caps

    def test_durable_storage_capability_follows_config(self):
        store = make_store(durable_storage=True)
        assert CAP_DURABLE_STORAGE in store.capabilities

    def test_degraded_reads_capability_follows_config(self):
        store = make_store(degraded_reads=False)
        assert CAP_DEGRADED_READS not in store.capabilities

    def test_baselines_advertise_nothing(self):
        for protocol in ("eventual", "quorum", "cops"):
            assert build(protocol).capabilities == frozenset()

    def test_capabilities_are_immutable(self):
        caps = make_store().capabilities
        assert isinstance(caps, frozenset)


class TestDegradedReads:
    def _partitioned_store(self):
        """Head holds v2 alone; the client cannot reach the head.

        ack_k=1 lets the put complete from the head only; blocking the
        head's chain link strands v2 there, and blocking client<->head
        forces reads onto replicas that only hold the preload version.
        The failure detector is slowed so no view change rescues reads.
        """
        store = make_store(
            ack_k=1,
            op_timeout=0.05,
            client_retry_backoff=0.01,
            degraded_read_after=2,
            heartbeat_interval=1.0,
            failure_timeout=30.0,
        )
        store.preload({"k": "v1"})
        chain = store.managers["dc0"].view.chain_for("k")
        s = store.session(session_id="alice")
        store.network.block(f"dc0:{chain[0]}", f"dc0:{chain[1]}")
        result = run_op(store, s.put("k", "v2"))
        assert result.version.total() == 2  # preload + this put
        store.network.block("dc0:alice", f"dc0:{chain[0]}")
        return store, s, chain

    def test_unreachable_fresh_replica_serves_degraded(self):
        store, s, chain = self._partitioned_store()
        result = run_op(store, s.get("k"), extra=10.0)
        assert result.degraded is True
        assert result.value == "v1"
        assert result.served_by in chain[1:]
        assert s.degraded_reads == 1

    def test_degraded_read_leaves_dependency_table_alone(self):
        store, s, chain = self._partitioned_store()
        before = dict(s.dependency_table())
        run_op(store, s.get("k"), extra=10.0)
        assert s.dependency_table() == before

    def test_disabled_degraded_reads_time_out_instead(self):
        from repro.errors import RequestTimeout

        store = make_store(
            ack_k=1,
            op_timeout=0.05,
            client_retry_backoff=0.01,
            max_retries=4,
            degraded_reads=False,
            heartbeat_interval=1.0,
            failure_timeout=30.0,
        )
        store.preload({"k": "v1"})
        chain = store.managers["dc0"].view.chain_for("k")
        s = store.session(session_id="alice")
        store.network.block(f"dc0:{chain[0]}", f"dc0:{chain[1]}")
        run_op(store, s.put("k", "v2"))
        store.network.block("dc0:alice", f"dc0:{chain[0]}")
        fut = s.get("k")
        store.run(until=store.sim.now + 10.0)
        assert fut.failed()
        with pytest.raises(RequestTimeout):
            fut.result()
