"""Unit tests for cluster membership and failure detection."""

import pytest

from repro.cluster import ClusterManager, RingView
from repro.cluster.server_base import RingServer
from repro.errors import ClusterError
from repro.net import FixedLatency, Network
from repro.sim import Simulator


def deploy(sim, n=4, chain_length=3, failure_timeout=0.25):
    net = Network(sim, lan=FixedLatency(0.001))
    names = [f"s{i}" for i in range(n)]
    manager = ClusterManager(
        sim,
        net,
        site="dc0",
        servers=names,
        chain_length=chain_length,
        heartbeat_interval=0.05,
        failure_timeout=failure_timeout,
    )
    servers = [
        RingServer(sim, net, "dc0", name, manager.view) for name in names
    ]
    return net, manager, servers


class TestRingView:
    def test_chain_for_uses_ring(self):
        view = RingView(epoch=1, site="dc0", servers=("a", "b", "c"), chain_length=2)
        chain = view.chain_for("key")
        assert len(chain) == 2 and set(chain) <= {"a", "b", "c"}

    def test_addresses(self):
        view = RingView(epoch=1, site="dc0", servers=("a",), chain_length=1)
        assert str(view.address_of("a")) == "dc0:a"
        assert [str(a) for a in view.addresses()] == ["dc0:a"]


class TestManagerConfig:
    def test_rejects_zero_chain_length(self, sim):
        net = Network(sim)
        with pytest.raises(ClusterError):
            ClusterManager(sim, net, "dc0", ["a"], chain_length=0)

    def test_rejects_timeout_below_heartbeat(self, sim):
        net = Network(sim)
        with pytest.raises(ClusterError):
            ClusterManager(
                sim, net, "dc0", ["a"], chain_length=1,
                heartbeat_interval=0.5, failure_timeout=0.1,
            )


class TestFailureDetection:
    def test_healthy_servers_stay_in_view(self, sim):
        _, manager, _ = deploy(sim)
        sim.run(until=2.0)
        assert manager.view.epoch == 1
        assert len(manager.view.servers) == 4

    def test_silent_server_removed(self, sim):
        _, manager, servers = deploy(sim)
        sim.schedule_at(0.5, servers[0].crash)
        sim.run(until=2.0)
        assert servers[0].name not in manager.view.servers
        assert manager.view.epoch > 1

    def test_removal_within_few_timeouts(self, sim):
        _, manager, servers = deploy(sim, failure_timeout=0.2)
        epochs = []
        manager.add_view_listener(lambda view: epochs.append(sim.now))
        sim.schedule_at(1.0, servers[0].crash)
        sim.run(until=3.0)
        assert epochs and epochs[0] < 1.0 + 3 * 0.2 + 0.1

    def test_survivors_receive_new_view(self, sim):
        _, manager, servers = deploy(sim)
        sim.schedule_at(0.5, servers[0].crash)
        sim.run(until=2.0)
        for server in servers[1:]:
            assert server.view.epoch == manager.view.epoch

    def test_recovered_server_rejoins_automatically(self, sim):
        _, manager, servers = deploy(sim)
        sim.schedule_at(0.5, servers[0].crash)
        sim.schedule_at(2.0, servers[0].recover)
        sim.run(until=4.0)
        assert servers[0].name in manager.view.servers

    def test_last_server_failure_raises(self, sim):
        _, manager, servers = deploy(sim, n=1, chain_length=1)
        servers[0].crash()
        with pytest.raises(ClusterError):
            sim.run(until=2.0)


class TestAdmin:
    def test_add_server_bumps_epoch(self, sim):
        net, manager, servers = deploy(sim)
        RingServer(sim, net, "dc0", "s9", manager.view)
        manager.add_server("s9")
        assert "s9" in manager.view.servers
        assert manager.view.epoch == 2

    def test_add_duplicate_rejected(self, sim):
        _, manager, _ = deploy(sim)
        with pytest.raises(ClusterError):
            manager.add_server("s0")

    def test_rpc_get_view_returns_current(self, sim):
        net, manager, servers = deploy(sim)
        view = manager.rpc_get_view(None, servers[0].address)
        assert view is manager.view

    def test_view_listener_called_on_change(self, sim):
        _, manager, servers = deploy(sim)
        seen = []
        manager.add_view_listener(seen.append)
        sim.schedule_at(0.5, servers[0].crash)
        sim.run(until=2.0)
        assert seen and seen[-1].epoch == manager.view.epoch


class TestServerBase:
    def test_positions_and_neighbours(self, sim):
        _, manager, servers = deploy(sim)
        key = "somekey"
        chain = manager.view.chain_for(key)
        head = next(s for s in servers if s.name == chain[0])
        tail = next(s for s in servers if s.name == chain[-1])
        assert head.is_head(key) and not head.is_tail(key)
        assert tail.is_tail(key)
        assert head.predecessor(key) is None
        assert tail.successor(key) is None
        assert head.successor(key).node == chain[1]

    def test_not_responsible_raises(self, sim):
        from repro.errors import NotResponsibleError

        _, manager, servers = deploy(sim)
        key = "somekey"
        chain = manager.view.chain_for(key)
        outsider = next(s for s in servers if s.name not in chain)
        with pytest.raises(NotResponsibleError):
            outsider.my_position(key)

    def test_stale_view_change_ignored(self, sim):
        from repro.cluster.membership import ViewChange

        _, manager, servers = deploy(sim)
        stale = RingView(epoch=0, site="dc0", servers=("s0",), chain_length=1)
        servers[0].on_view_change(ViewChange(view=stale), manager.address)
        assert servers[0].view.epoch == 1
