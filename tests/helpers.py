"""Shared builders for the test suite (importable without conftest magic)."""

from __future__ import annotations

from repro.baselines import build_store
from repro.core import ChainReactionConfig, ChainReactionStore


def make_store(**overrides) -> ChainReactionStore:
    """A small single-DC ChainReaction deployment for protocol tests."""
    defaults = dict(
        sites=("dc0",),
        servers_per_site=4,
        chain_length=3,
        ack_k=2,
        seed=7,
        service_time=0.0,  # protocol tests want latency without queueing
    )
    defaults.update(overrides)
    return ChainReactionStore(ChainReactionConfig(**defaults))


def make_geo_store(n_sites: int = 2, **overrides) -> ChainReactionStore:
    sites = tuple(f"dc{i}" for i in range(n_sites))
    return make_store(sites=sites, **overrides)


def run_op(store, future, extra: float = 1.0):
    """Advance virtual time just until a client operation resolves.

    Unlike ``sim.run(until=...)`` this stops at the resolution instant,
    so tests can interleave operations with precise timing.
    """
    deadline = store.sim.now + extra
    sim = store.sim
    while not future.done():
        if sim.now >= deadline or not sim.step():
            break
    assert future.done(), f"operation still pending at t={sim.now}"
    return future.result()


def build(protocol: str, **kwargs):
    """Registry passthrough with small-test defaults."""
    defaults = dict(servers_per_site=4, chain_length=3, seed=7)
    defaults.update(kwargs)
    return build_store(protocol, **defaults)
