"""Tests for the eventually-consistent baseline."""

import pytest

from helpers import build, run_op

from repro.baselines import BaselineConfig, EventualStore
from repro.checker import await_convergence


def make_eventual(**overrides):
    defaults = dict(
        sites=("dc0",), servers_per_site=4, chain_length=3, seed=7, service_time=0.0
    )
    defaults.update(overrides)
    return EventualStore(BaselineConfig(**defaults))


class TestBasicOps:
    def test_put_then_get(self):
        store = make_eventual()
        s = store.session()
        run_op(store, s.put("k", "v"))
        store.run(until=1.0)
        assert run_op(store, s.get("k")).value == "v"

    def test_get_missing(self):
        store = make_eventual()
        s = store.session()
        result = run_op(store, s.get("ghost"))
        assert result.value is None

    def test_delete(self):
        store = make_eventual()
        s = store.session()
        run_op(store, s.put("k", "v"))
        store.run(until=1.0)
        run_op(store, s.delete("k"))
        store.run(until=1.0)
        assert run_op(store, s.get("k")).value is None

    def test_immediate_ack_single_round_trip(self):
        store = make_eventual()
        s = store.session()
        fut = s.put("k", "v")
        run_op(store, fut)
        # one round trip to one replica: ~2 fixed LAN hops
        assert fut.resolved_at < 0.01


class TestReplication:
    def test_direct_replication_reaches_all_replicas(self):
        store = make_eventual()
        s = store.session()
        run_op(store, s.put("k", "v"))
        store.run(until=1.0)
        view = store.managers["dc0"].view
        for name in view.chain_for("k"):
            node = store._node("dc0", name)
            assert node.store.get("k").value == "v"

    def test_stale_read_window_exists(self):
        """Immediately after the ack, some replica may not have the write —
        the anomaly window ChainReaction closes."""
        store = make_eventual()
        s = store.session()
        fut = s.put("k", "v")
        run_op(store, fut)
        view = store.managers["dc0"].view
        values = {
            store._node("dc0", name).store.get("k") is not None
            for name in view.chain_for("k")
        }
        assert values == {True, False}

    def test_anti_entropy_repairs_missed_updates(self):
        store = make_eventual(anti_entropy_interval=0.2)
        s = store.session()
        # Drop direct replication entirely; only anti-entropy remains.
        store.network.add_filter(lambda _s, _d, m: m.type_name != "ev-replicate")
        run_op(store, s.put("k", "v"))
        report = await_convergence(store, ["k"], max_extra_time=5.0)
        assert report.converged

    def test_geo_replication_converges(self):
        store = make_eventual(sites=("dc0", "dc1"))
        a = store.session("dc0")
        b = store.session("dc1")
        a.put("k", "x")
        b.put("k", "y")
        report = await_convergence(store, ["k"], max_extra_time=5.0)
        assert report.converged


class TestAnomalies:
    def test_read_your_writes_can_fail(self):
        """Reading a different replica right after the ack misses the write."""
        store = make_eventual()
        s = store.session()
        fut = s.put("k", "v")
        run_op(store, fut)
        view = store.managers["dc0"].view
        chain = view.chain_for("k")
        missing = [
            name
            for name in chain
            if store._node("dc0", name).store.get("k") is None
        ]
        assert missing, "no stale replica to demonstrate the anomaly"
