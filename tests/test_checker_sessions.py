"""Unit tests for session-guarantee checkers on hand-built histories."""

from repro.checker import (
    GET,
    PUT,
    History,
    check_monotonic_reads,
    check_monotonic_writes,
    check_read_your_writes,
    check_session_guarantees,
    check_writes_follow_reads,
)
from repro.storage import VersionVector


def vv(**entries):
    return VersionVector(entries)


def history(*ops):
    h = History()
    for i, (session, op, key, version) in enumerate(ops):
        h.add(session, op, key, f"value{i}", version, float(i), float(i) + 0.5)
    return h


class TestReadYourWrites:
    def test_clean(self):
        h = history(
            ("s1", PUT, "k", vv(dc0=1)),
            ("s1", GET, "k", vv(dc0=1)),
        )
        assert check_read_your_writes(h) == []

    def test_reading_newer_is_fine(self):
        h = history(
            ("s1", PUT, "k", vv(dc0=1)),
            ("s1", GET, "k", vv(dc0=2)),
        )
        assert check_read_your_writes(h) == []

    def test_stale_read_after_own_write_flagged(self):
        h = history(
            ("s1", PUT, "k", vv(dc0=2)),
            ("s1", GET, "k", vv(dc0=1)),
        )
        violations = check_read_your_writes(h)
        assert len(violations) == 1
        assert violations[0].guarantee == "read-your-writes"

    def test_other_sessions_reads_not_constrained(self):
        h = history(
            ("s1", PUT, "k", vv(dc0=2)),
            ("s2", GET, "k", vv()),
        )
        assert check_read_your_writes(h) == []

    def test_concurrent_version_read_flagged(self):
        h = history(
            ("s1", PUT, "k", vv(dc0=1)),
            ("s1", GET, "k", vv(dc1=1)),
        )
        assert len(check_read_your_writes(h)) == 1


class TestMonotonicReads:
    def test_clean_progression(self):
        h = history(
            ("s1", GET, "k", vv(dc0=1)),
            ("s1", GET, "k", vv(dc0=2)),
        )
        assert check_monotonic_reads(h) == []

    def test_same_version_twice_is_fine(self):
        h = history(
            ("s1", GET, "k", vv(dc0=1)),
            ("s1", GET, "k", vv(dc0=1)),
        )
        assert check_monotonic_reads(h) == []

    def test_regression_flagged(self):
        h = history(
            ("s1", GET, "k", vv(dc0=2)),
            ("s1", GET, "k", vv(dc0=1)),
        )
        assert len(check_monotonic_reads(h)) == 1

    def test_different_keys_independent(self):
        h = history(
            ("s1", GET, "a", vv(dc0=2)),
            ("s1", GET, "b", vv(dc0=1)),
        )
        assert check_monotonic_reads(h) == []


class TestMonotonicWrites:
    def test_ordered_writes_clean(self):
        h = history(
            ("s1", PUT, "k", vv(dc0=1)),
            ("s1", PUT, "k", vv(dc0=2)),
        )
        assert check_monotonic_writes(h) == []

    def test_concurrent_own_writes_flagged(self):
        h = history(
            ("s1", PUT, "k", vv(dc0=1)),
            ("s1", PUT, "k", vv(dc1=1)),
        )
        assert len(check_monotonic_writes(h)) == 1


class TestWritesFollowReads:
    def test_ordered_clean(self):
        h = history(
            ("s1", GET, "k", vv(dc0=1)),
            ("s1", PUT, "k", vv(dc0=2)),
        )
        assert check_writes_follow_reads(h) == []

    def test_write_not_after_read_flagged(self):
        h = history(
            ("s1", GET, "k", vv(dc0=5)),
            ("s1", PUT, "k", vv(dc1=1)),
        )
        assert len(check_writes_follow_reads(h)) == 1


class TestAllGuarantees:
    def test_clean_history_all_empty(self):
        h = history(
            ("s1", PUT, "a", vv(dc0=1)),
            ("s1", GET, "a", vv(dc0=1)),
            ("s2", GET, "a", vv(dc0=1)),
            ("s2", PUT, "a", vv(dc0=2)),
        )
        result = check_session_guarantees(h)
        assert all(not v for v in result.values()), result

    def test_reports_keyed_by_guarantee(self):
        result = check_session_guarantees(History())
        assert set(result) == {
            "read-your-writes",
            "monotonic-reads",
            "monotonic-writes",
            "writes-follow-reads",
        }
