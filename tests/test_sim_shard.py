"""Unit tests for the sharded-engine building blocks: kernel windows,
envelope ordering, the shard boundary trap, and spec validation.

The end-to-end determinism proof (workers=1 vs N byte-identical traces)
lives in ``test_parallel_determinism.py``; this file covers the pieces
in isolation.
"""

import dataclasses
import pickle
from typing import Any, ClassVar

import pytest

from repro.errors import ConfigError, SimulationError
from repro.net import Address, Envelope, FixedLatency, Message, Network, ShardBoundary
from repro.sim import Simulator
from repro.sim.shard import (
    ExperimentSpec,
    FaultEvent,
    ShardedSimulator,
    experiment_lookahead,
)
from repro.workload.ycsb import WorkloadSpec


@dataclasses.dataclass(frozen=True)
class Note(Message):
    type_name: ClassVar[str] = "note"
    body: Any = None


A = Address("dc0", "a")
R = Address("dc1", "r")  # remote: lives on another shard


def tiny_workload() -> WorkloadSpec:
    return WorkloadSpec(
        "tiny",
        read_proportion=0.5,
        update_proportion=0.5,
        insert_proportion=0.0,
        record_count=20,
        distribution="uniform",
        value_size=16,
    )


# ----------------------------------------------------------------------
# kernel: next_event_time / run_window
# ----------------------------------------------------------------------


class TestKernelWindows:
    def test_next_event_time_empty(self, sim):
        assert sim.next_event_time() is None

    def test_next_event_time_peeks_earliest(self, sim):
        sim.schedule_at(2.0, lambda: None)
        sim.schedule_at(1.0, lambda: None)
        assert sim.next_event_time() == 1.0
        assert sim.now == 0.0  # peeking does not advance the clock

    def test_next_event_time_skips_cancelled(self, sim):
        handle = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(3.0, lambda: None)
        handle.cancel()
        assert sim.next_event_time() == 3.0

    def test_run_window_bound_is_strict(self, sim):
        fired = []
        for t in (0.5, 1.0, 1.5):
            sim.schedule_at(t, fired.append, t)
        executed = sim.run_window(1.0)
        # Events strictly below the bound run; the event AT the bound
        # stays — same-instant merge order is decided after injection.
        assert fired == [0.5]
        assert executed == 1
        assert sim.next_event_time() == 1.0

    def test_run_window_does_not_advance_clock_to_bound(self, sim):
        sim.schedule_at(0.25, lambda: None)
        sim.run_window(1.0)
        # The clock sits at the last executed event, not the bound:
        # injected envelopes may be timestamped anywhere >= bound.
        assert sim.now == 0.25

    def test_run_window_then_run_completes(self, sim):
        fired = []
        for t in (0.5, 1.5):
            sim.schedule_at(t, fired.append, t)
        sim.run_window(1.0)
        sim.run(until=2.0)
        assert fired == [0.5, 1.5]
        assert sim.now == 2.0


# ----------------------------------------------------------------------
# envelopes + boundary
# ----------------------------------------------------------------------


def make_boundary(lookahead: float = 0.05):
    sim = Simulator()
    net = Network(sim, lan=FixedLatency(0.001), wan=FixedLatency(0.010))
    boundary = ShardBoundary(
        net, shard_id=0, remote_sites=frozenset({"dc1"}), lookahead=lookahead
    )
    net.attach_boundary(boundary)
    return sim, net, boundary


class TestEnvelope:
    def test_sort_key_orders_time_then_shard_then_seq(self):
        def env(t, shard, seq):
            return Envelope(t, shard, seq, A, R, Note())

        batch = [env(2.0, 0, 1), env(1.0, 1, 2), env(1.0, 0, 9), env(1.0, 0, 3)]
        ordered = sorted(batch, key=Envelope.sort_key)
        assert [e.sort_key() for e in ordered] == [
            (1.0, 0, 3),
            (1.0, 0, 9),
            (1.0, 1, 2),
            (2.0, 0, 1),
        ]

    def test_envelope_pickles(self):
        env = Envelope(1.0, 0, 1, A, R, Note(body="x"))
        clone = pickle.loads(pickle.dumps(env))
        assert clone == env


class TestShardBoundary:
    def test_rejects_nonpositive_lookahead(self):
        sim = Simulator()
        net = Network(sim)
        with pytest.raises(SimulationError):
            ShardBoundary(net, 0, frozenset({"dc1"}), lookahead=0.0)

    def test_remote_send_is_trapped_not_raised(self):
        sim, net, boundary = make_boundary()
        net.send(A, R, Note(body="hi"))
        out = boundary.drain()
        assert len(out) == 1 and out[0].dst == R
        assert boundary.envelopes_sent == 1
        assert net.stats.cross_site_messages == 1  # sender-side accounting

    def test_delay_clamped_to_lookahead(self):
        # WAN model says 10 ms, but the boundary promised >= 50 ms:
        # the clamp keeps the conservative invariant even if a model
        # undercuts its declared floor.
        sim, net, boundary = make_boundary(lookahead=0.05)
        net.send(A, R, Note())
        (env,) = boundary.drain()
        assert env.deliver_at == pytest.approx(0.05)

    def test_fifo_per_link(self):
        sim, net, boundary = make_boundary(lookahead=0.05)
        net.send(A, R, Note(body=1))
        net.send(A, R, Note(body=2))
        first, second = boundary.drain()
        assert second.deliver_at > first.deliver_at
        assert second.seq > first.seq

    def test_drain_clears(self):
        sim, net, boundary = make_boundary()
        net.send(A, R, Note())
        assert len(boundary.drain()) == 1
        assert boundary.drain() == []

    def test_inject_delivers_through_network(self):
        sim, net, boundary = make_boundary()
        inbox = []
        local = Address("dc0", "local")
        net.register(local, lambda msg, src: inbox.append(msg.body))
        envelopes = [
            Envelope(0.2, 1, 2, R, local, Note(body="second")),
            Envelope(0.1, 1, 1, R, local, Note(body="first")),
        ]
        boundary.inject(envelopes)
        sim.run()
        assert inbox == ["first", "second"]
        assert boundary.envelopes_injected == 2

    def test_inject_stale_envelope_raises(self):
        sim, net, boundary = make_boundary()
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            boundary.inject([Envelope(0.5, 1, 1, R, A, Note())])

    def test_crashed_destination_drops_at_delivery(self):
        # Crash state is re-checked in the receiving shard at delivery
        # time, mirroring an intra-shard send.
        sim, net, boundary = make_boundary()
        local = Address("dc0", "local")
        net.register(local, lambda msg, src: None)
        net.set_down(local, True)
        boundary.inject([Envelope(0.1, 1, 1, R, local, Note())])
        dropped_before = net.stats.messages_dropped
        sim.run()
        assert net.stats.messages_dropped == dropped_before + 1

    def test_unknown_site_still_raises(self):
        from repro.errors import AddressUnknownError

        sim, net, boundary = make_boundary()
        with pytest.raises(AddressUnknownError):
            net.send(A, Address("dc9", "ghost"), Note())


# ----------------------------------------------------------------------
# spec validation
# ----------------------------------------------------------------------


class TestExperimentSpec:
    def test_rejects_unshardable_protocol(self):
        with pytest.raises(ConfigError):
            ExperimentSpec(workload=tiny_workload(), protocol="eventual")

    def test_rejects_duplicate_sites(self):
        with pytest.raises(ConfigError):
            ExperimentSpec(workload=tiny_workload(), sites=("dc0", "dc0"))

    def test_client_sites_round_robin(self):
        spec = ExperimentSpec(
            workload=tiny_workload(), sites=("dc0", "dc1", "dc2"), n_clients=5
        )
        assert spec.client_sites() == [
            (0, "dc0"),
            (1, "dc1"),
            (2, "dc2"),
            (3, "dc0"),
            (4, "dc1"),
        ]

    def test_stop_sums_phases(self):
        spec = ExperimentSpec(
            workload=tiny_workload(), duration=1.0, warmup=0.25, drain=0.5
        )
        assert spec.stop == pytest.approx(1.75)

    def test_lookahead_is_wan_floor(self):
        from repro.net import wan_latency

        spec = ExperimentSpec(workload=tiny_workload())
        assert experiment_lookahead(spec) == pytest.approx(
            wan_latency(spec.wan_median).min_latency()
        )

    def test_lookahead_honors_override(self):
        base = ExperimentSpec(workload=tiny_workload())
        doubled = ExperimentSpec(
            workload=tiny_workload(), overrides=(("wan_median", 0.080),)
        )
        assert experiment_lookahead(doubled) == pytest.approx(
            2 * experiment_lookahead(base)
        )

    def test_spec_pickles(self):
        spec = ExperimentSpec(
            workload=tiny_workload(),
            faults=(FaultEvent(0.5, "crash", site="dc0", node="s1"),),
        )
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestFaultEvent:
    def test_unknown_action_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent(1.0, "meteor")

    def test_crash_needs_site_and_node(self):
        with pytest.raises(ConfigError):
            FaultEvent(1.0, "crash", site="dc0")

    def test_partition_needs_both_sites(self):
        with pytest.raises(ConfigError):
            FaultEvent(1.0, "partition", site="dc0")

    def test_heal_needs_nothing(self):
        FaultEvent(1.0, "heal")  # no raise


class TestShardedSimulatorConfig:
    def test_rejects_zero_workers(self):
        spec = ExperimentSpec(workload=tiny_workload())
        with pytest.raises(ConfigError):
            ShardedSimulator(spec, workers=0)

    def test_workers_clamped_to_shard_count(self):
        spec = ExperimentSpec(workload=tiny_workload(), sites=("dc0", "dc1"))
        assert ShardedSimulator(spec, workers=8).workers == 2

    def test_zero_lookahead_multisite_rejected(self, monkeypatch):
        # No shipped model has a zero floor (LogNormal rejects median=0
        # outright), so force one to exercise the degrade-to-serial guard.
        import repro.sim.shard as shard_mod

        monkeypatch.setattr(shard_mod, "experiment_lookahead", lambda spec: 0.0)
        spec = ExperimentSpec(workload=tiny_workload())
        with pytest.raises(ConfigError):
            ShardedSimulator(spec, workers=2)


class TestLocalSitesBuilds:
    def test_registry_rejects_local_sites_for_unshardable_protocol(self):
        from repro.baselines.registry import build_store

        with pytest.raises(ConfigError):
            build_store("eventual", sites=("dc0", "dc1"), local_sites=("dc0",))

    def test_datastore_rejects_unknown_local_site(self):
        from repro.baselines.registry import build_store

        with pytest.raises(ConfigError):
            build_store("chainreaction", sites=("dc0", "dc1"), local_sites=("dc9",))
