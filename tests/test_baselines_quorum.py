"""Tests for the quorum-replicated baseline."""

import pytest

from helpers import run_op

from repro.baselines import BaselineConfig, QuorumStore


def make_quorum(**overrides):
    defaults = dict(
        sites=("dc0",), servers_per_site=4, chain_length=3,
        write_quorum=2, read_quorum=2, seed=7, service_time=0.0,
    )
    defaults.update(overrides)
    return QuorumStore(BaselineConfig(**defaults))


class TestBasicOps:
    def test_put_then_get(self):
        store = make_quorum()
        s = store.session()
        run_op(store, s.put("k", "v"))
        assert run_op(store, s.get("k")).value == "v"

    def test_delete(self):
        store = make_quorum()
        s = store.session()
        run_op(store, s.put("k", "v"))
        run_op(store, s.delete("k"))
        assert run_op(store, s.get("k")).value is None

    def test_get_missing(self):
        store = make_quorum()
        s = store.session()
        assert run_op(store, s.get("ghost")).value is None


class TestQuorumSemantics:
    def test_write_waits_for_w_replicas(self):
        store = make_quorum(write_quorum=3)
        s = store.session()
        fut = s.put("k", "v")
        run_op(store, fut)
        view = store.managers["dc0"].view
        present = sum(
            1
            for name in view.chain_for("k")
            if store._node("dc0", name).store.get("k") is not None
        )
        assert present >= 3

    def test_overlapping_quorums_read_your_writes(self):
        """W=2, R=2 over N=3 intersect: every read sees the session's
        latest write, no matter which coordinator it lands on."""
        store = make_quorum(write_quorum=2, read_quorum=2)
        s = store.session()
        for i in range(25):
            run_op(store, s.put("k", f"v{i}"))
            assert run_op(store, s.get("k")).value == f"v{i}"

    def test_non_overlapping_quorums_can_go_stale(self):
        """W=1, R=1 with frozen replication: a read from another replica
        misses the write — the configuration E10 penalises."""
        store = make_quorum(write_quorum=1, read_quorum=1)
        # Replication rides replica_write RPCs; block those so only the
        # coordinator that took the write holds it.
        store.network.add_filter(
            lambda _s, _d, m: getattr(m, "method", None) != "replica_write"
        )
        s = store.session()
        run_op(store, s.put("k", "v"))
        stale = 0
        for _ in range(30):
            if run_op(store, s.get("k")).value is None:
                stale += 1
        assert stale > 0

    def test_read_repair_heals_stale_replicas(self):
        store = make_quorum(write_quorum=1, read_quorum=3)
        # Stop direct replication; only read repair can spread the write.
        store.network.add_filter(
            lambda _s, _d, m: getattr(m, "method", None) != "replica_write"
        )
        s = store.session()
        run_op(store, s.put("k", "v"))
        # A full-quorum read triggers repair of the replicas that answered stale.
        for _ in range(10):
            run_op(store, s.get("k"))
        store.network.clear_filters()
        store.run(until=store.sim.now + 1.0)
        view = store.managers["dc0"].view
        present = sum(
            1
            for name in view.chain_for("k")
            if store._node("dc0", name).store.get("k") is not None
        )
        assert present == 3
        assert sum(n.read_repairs for n in store.servers()) > 0

    def test_newest_version_wins_reads(self):
        store = make_quorum()
        s = store.session()
        run_op(store, s.put("k", "old"))
        run_op(store, s.put("k", "new"))
        for _ in range(10):
            assert run_op(store, s.get("k")).value == "new"
