"""Unit and property tests for version vectors."""

import pytest
from hypothesis import given, strategies as st

from repro.storage import ZERO, VersionVector

DCS = ["dc0", "dc1", "dc2"]

vectors = st.builds(
    VersionVector,
    st.dictionaries(st.sampled_from(DCS), st.integers(min_value=0, max_value=50)),
)


class TestBasics:
    def test_missing_entries_are_zero(self):
        vv = VersionVector({"dc0": 3})
        assert vv.get("dc0") == 3
        assert vv.get("dc1") == 0

    def test_zero_entries_normalised_away(self):
        assert VersionVector({"dc0": 0}) == ZERO
        assert VersionVector({"dc0": 0, "dc1": 1}).entries() == {"dc1": 1}

    def test_negative_counter_rejected(self):
        with pytest.raises(ValueError):
            VersionVector({"dc0": -1})

    def test_increment_returns_new_vector(self):
        a = VersionVector({"dc0": 1})
        b = a.increment("dc0")
        assert a.get("dc0") == 1
        assert b.get("dc0") == 2

    def test_increment_new_dc(self):
        assert ZERO.increment("dc1").entries() == {"dc1": 1}

    def test_total_sums_counters(self):
        assert VersionVector({"dc0": 2, "dc1": 3}).total() == 5

    def test_is_zero(self):
        assert ZERO.is_zero()
        assert not VersionVector({"dc0": 1}).is_zero()

    def test_equality_and_hash(self):
        assert VersionVector({"dc0": 1}) == VersionVector({"dc0": 1})
        assert hash(VersionVector({"dc0": 1})) == hash(VersionVector({"dc0": 1, "dc1": 0}))

    def test_datacenters_sorted(self):
        vv = VersionVector({"dc1": 1, "dc0": 2})
        assert vv.datacenters() == ("dc0", "dc1")


class TestCausalityOrder:
    def test_dominates_is_reflexive(self):
        vv = VersionVector({"dc0": 2})
        assert vv.dominates(vv)

    def test_strict_happens_before(self):
        a = VersionVector({"dc0": 1})
        b = VersionVector({"dc0": 2})
        assert a.happens_before(b)
        assert not b.happens_before(a)
        assert not a.happens_before(a)

    def test_concurrent_vectors(self):
        a = VersionVector({"dc0": 1})
        b = VersionVector({"dc1": 1})
        assert a.concurrent_with(b)
        assert b.concurrent_with(a)

    def test_zero_precedes_everything(self):
        assert ZERO.happens_before(VersionVector({"dc0": 1}))

    def test_merge_is_least_upper_bound(self):
        a = VersionVector({"dc0": 3, "dc1": 1})
        b = VersionVector({"dc0": 1, "dc1": 5})
        merged = a.merge(b)
        assert merged.entries() == {"dc0": 3, "dc1": 5}
        assert merged.dominates(a) and merged.dominates(b)

    def test_join_many(self):
        vvs = [VersionVector({"dc0": 1}), VersionVector({"dc1": 2}), ZERO]
        assert VersionVector.join(vvs).entries() == {"dc0": 1, "dc1": 2}


class TestWireSize:
    def test_size_grows_with_entries(self):
        one = VersionVector({"dc0": 1})
        two = VersionVector({"dc0": 1, "dc1": 1})
        assert two.size_bytes() > one.size_bytes() > 0


class TestProperties:
    @given(vectors, vectors)
    def test_merge_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @given(vectors, vectors, vectors)
    def test_merge_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @given(vectors)
    def test_merge_idempotent(self, a):
        assert a.merge(a) == a

    @given(vectors, vectors)
    def test_merge_dominates_both(self, a, b):
        merged = a.merge(b)
        assert merged.dominates(a) and merged.dominates(b)

    @given(vectors, vectors)
    def test_dominance_antisymmetric(self, a, b):
        if a.dominates(b) and b.dominates(a):
            assert a == b

    @given(vectors, vectors, vectors)
    def test_dominance_transitive(self, a, b, c):
        if a.dominates(b) and b.dominates(c):
            assert a.dominates(c)

    @given(vectors, vectors)
    def test_exactly_one_relation(self, a, b):
        relations = [
            a == b,
            a.happens_before(b),
            b.happens_before(a),
            a.concurrent_with(b),
        ]
        assert sum(relations) == 1

    @given(vectors, vectors)
    def test_total_order_extends_causality(self, a, b):
        if a.happens_before(b):
            assert a.total_order_key() < b.total_order_key()

    @given(vectors, vectors)
    def test_total_order_is_total(self, a, b):
        keys = {a.total_order_key(), b.total_order_key()}
        assert len(keys) == 1 or (a < b) != (b < a)

    @given(vectors)
    def test_increment_strictly_dominates(self, a):
        assert a.happens_before(a.increment("dc0"))

    @given(vectors)
    def test_entries_roundtrip(self, a):
        assert VersionVector(a.entries()) == a
