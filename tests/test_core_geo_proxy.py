"""Unit-level tests for the geo proxy's bookkeeping."""

import pytest

from helpers import make_geo_store, run_op

from repro.core.messages import GlobalAck, TailStable
from repro.storage import VersionVector


def vv(**entries):
    return VersionVector(entries)


class TestShipping:
    def test_local_origin_write_shipped_once(self):
        store = make_geo_store()
        s = store.session("dc0")
        run_op(store, s.put("k", "v"))
        store.run(until=2.0)
        assert store.proxies["dc0"].updates_shipped == 1
        assert store.proxies["dc1"].updates_shipped == 0
        assert store.proxies["dc1"].updates_applied == 1

    def test_duplicate_tail_stable_not_reshipped(self):
        store = make_geo_store()
        s = store.session("dc0")
        version = run_op(store, s.put("k", "v")).version
        # DC-stable locally but the WAN round trip (global stability) is
        # still in flight — the dedup window the token set protects.
        store.run(until=store.sim.now + 0.01)
        proxy = store.proxies["dc0"]
        tail_addr = proxy.view.address_of(proxy.view.chain_for("k")[-1])
        duplicate = TailStable(key="k", value="v", version=version, origin_site="dc0")
        proxy.on_tail_stable(duplicate, tail_addr)
        assert proxy.duplicate_ships == 1
        assert proxy.updates_shipped == 1

    def test_post_global_reship_is_harmless(self):
        """After global stability the dedup token is garbage-collected; a
        repair-driven re-announcement re-ships, and the remote store
        deduplicates — convergence is unaffected."""
        store = make_geo_store()
        s = store.session("dc0")
        version = run_op(store, s.put("k", "v")).version
        store.run(until=2.0)  # globally stable, token GC'd
        proxy = store.proxies["dc0"]
        tail_addr = proxy.view.address_of(proxy.view.chain_for("k")[-1])
        proxy.on_tail_stable(
            TailStable(key="k", value="v", version=version, origin_site="dc0"),
            tail_addr,
        )
        store.run(until=store.sim.now + 2.0)
        assert store.converged("k")

    def test_remote_origin_stability_acked_not_shipped(self):
        store = make_geo_store()
        s = store.session("dc0")
        run_op(store, s.put("k", "v"))
        store.run(until=2.0)
        # dc1's tail stabilised the remote write → GlobalAck, not a re-ship.
        assert store.proxies["dc1"].updates_shipped == 0
        assert store.proxies["dc0"].global_stability_samples


class TestGlobalAcks:
    def test_stray_ack_ignored(self):
        store = make_geo_store()
        proxy = store.proxies["dc0"]
        proxy.on_global_ack(
            GlobalAck(key="ghost", version=vv(dc0=9), site="dc1"),
            store.proxies["dc1"].address,
        )
        assert proxy.global_stability_samples == []

    def test_all_sites_must_ack(self):
        store = make_geo_store(n_sites=3)
        s = store.session("dc0")
        run_op(store, s.put("k", "v"))
        # Before any WAN round trip completes: not globally stable.
        store.run(until=store.sim.now + 0.005)
        assert store.proxies["dc0"].global_stability_samples == []
        store.run(until=store.sim.now + 1.0)
        assert len(store.proxies["dc0"].global_stability_samples) == 1


class TestViewTracking:
    def test_proxy_follows_view_epochs(self):
        store = make_geo_store()
        proxy = store.proxies["dc0"]
        epoch = proxy.view.epoch
        store.servers("dc0")[0].crash()
        store.run(until=store.sim.now + 1.0)
        assert proxy.view.epoch > epoch

    def test_stale_view_not_installed(self):
        store = make_geo_store()
        proxy = store.proxies["dc0"]
        import dataclasses

        stale = dataclasses.replace(proxy.view, epoch=0)
        proxy.set_view(stale)
        assert proxy.view.epoch >= 1


class TestPerKeyOrdering:
    def test_same_key_updates_apply_in_ship_order(self):
        """Rapid same-key writes at the origin arrive in order at the
        remote head even though their dependency waits run concurrently."""
        store = make_geo_store()
        s = store.session("dc0")
        for i in range(10):
            run_op(store, s.put("hot", f"v{i}"))
        store.run(until=store.sim.now + 2.0)
        # remote replicas all converged on the last value
        view = store.managers["dc1"].view
        for name in view.chain_for("hot"):
            node = next(n for n in store.nodes["dc1"] if n.name == name)
            assert node.store.get("hot").value == "v9"
        assert store.converged("hot")
