#!/usr/bin/env python
"""Perf smoke gate: tiny-scale microbenchmarks + regression check.

Kept out of tier-1 (it measures wall-clock, which CI machines make
noisy) — run it explicitly::

    PYTHONPATH=src python scripts/perf_smoke.py [--output BENCH_PR1.json]

What it does:

1. runs the hot-path microbenchmarks at tiny scale;
2. compares the optimized event-kernel throughput against the
   *recorded* baseline in the existing BENCH JSON (if any) and fails
   (exit 1) on a >30% regression;
3. also fails if the optimized kernel no longer beats the in-process
   seed-kernel baseline (the machine-independent floor);
4. runs a small batched-vs-unbatched protocol-plane comparison and
   fails if the batched configuration's wall rate drops below 90% of
   the unbatched one (batching must never cost wall-clock);
5. runs a shrunk two-arm memory-model comparison (`perf --scale`
   profile at smoke size) and fails if the current layout's bytes/key
   exceeds 110% of the figure committed in BENCH_PR5.json, scaled to
   the smoke profile via the in-run legacy arm — or if the layout ever
   costs more memory than the legacy one;
6. runs the shrunk sharded scale tier at workers 1 and 2 and fails if
   the trace digests differ (the engine's determinism contract,
   enforced on any host) or — on hosts scheduling >= 2 CPUs — if the
   workers=2 wall rate is below 1.25x the workers=1 rate;
7. runs a single-repeat stabilization-plane A/B (notices vs clock) and
   fails if the clock plane's wall rate drops below 90% of the notices
   plane, if it stops cutting stability-control bytes by at least 5x,
   or if its per-key stamp map stops being bounded;
8. runs a shrunk partial geo-replication A/B (replication degree 2 of
   3 sites on the hot-shard workload) and fails if shipping bytes/key
   at r=2 exceeds 70% of full replication — in the smoke run or in the
   committed BENCH_PR10.json — if the per-DC record census stops
   shrinking, or if explicitly configuring the replication degree to
   the site count (i.e. full replication spelled out) changes a single
   event, message, or byte of the golden-trace workload;
9. with ``--kernel compiled``, measures the mypyc-compiled event kernel
   against the pure interpreter in the same process and fails if the
   build is absent or the compiled kernel rate falls below 1.2x the
   pure rate (``--kernel pure`` records the pure rates without a
   floor — useful for comparing logs across machines);
10. rewrites the BENCH JSON with the fresh numbers on success.

CHANGES.md convention: a PR that moves any number here by >10% should
say so in its CHANGES.md line and ship the regenerated BENCH file.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.perf import (  # noqa: E402
    bench_protocol_plane,
    collect_report,
    summary_lines,
    write_report,
)

#: Fail when event throughput drops below this fraction of the recorded run.
REGRESSION_FLOOR = 0.70

#: Fail when the batched config's wall rate drops below this fraction of
#: the unbatched run (>10% regression).
BATCHED_FLOOR = 0.90

#: Fail when the memory model's bytes/key rises above this multiple of
#: the committed BENCH_PR5 figure (after scaling to the smoke profile).
BYTES_PER_KEY_CEILING = 1.10

#: Shrunk ``perf --scale`` profile for the memory smoke gate.
SCALE_SMOKE = {
    "record_count": 200,
    "duration": 0.4,
    "n_clients": 4,
    "rate_repeats": 1,
}

#: Fail when the workers=2 wall rate falls below this multiple of the
#: workers=1 rate — enforced only on hosts that schedule >= 2 CPUs.
PARALLEL_SPEEDUP_FLOOR = 1.25

#: Fail when the clock plane's wall rate drops below this fraction of
#: the notices plane's.
CLOCK_FLOOR = 0.90

#: Fail when the clock plane stops cutting stability-control bytes by
#: at least this factor vs the notices plane. The A/B runs at the full
#: BENCH_PR8 scale (duration 1.0): the clock plane's fixed-rate control
#: traffic dominates short runs, so a shrunk profile would undersell
#: the reduction and trip the gate spuriously.
CLOCK_BYTES_REDUCTION_FLOOR = 5.0

#: Fail when the compiled kernel's event rate falls below this multiple
#: of the pure interpreter's (enforced only under ``--kernel compiled``,
#: which requires a build). AOT-compiling the event loop should buy well
#: over this; the floor just keeps a silently broken build (e.g. one
#: that falls back to interpreting the same file) from passing.
KERNEL_SPEEDUP_FLOOR = 1.2

#: Shrunk sharded scale tier (``perf --scale --workers``) for the
#: determinism + speedup smoke gate.
PARALLEL_SMOKE = {
    "record_count": 2_000,
    "n_clients": 32,
    "duration": 0.2,
    "warmup": 0.05,
    "drain": 0.2,
}

#: Fail when r=2 shipping bytes/key exceeds this fraction of full
#: replication (smoke run and committed BENCH_PR10.json alike; the
#: counters are virtual, so the ratio is machine-independent).
PARTIAL_BYTES_RATIO_CEILING = 0.70

#: Fail when the r=2 record census shrinks less than this fraction.
PARTIAL_CENSUS_FLOOR = 0.30

#: Shrunk ``perf --partial`` profile for the partial-replication gate.
PARTIAL_SMOKE = {
    "ops_per_client": 150,
    "n_clients": 6,
    "record_count": 60,
}


def _golden_counters(overrides):
    """(events, messages, bytes, summary) of the golden-trace workload
    under ``overrides`` — the full-replication invariance probe."""
    from repro.baselines import build_store
    from repro.workload import WorkloadRunner, workload

    store = build_store(
        "chainreaction",
        sites=("dc0", "dc1"),
        servers_per_site=4,
        chain_length=3,
        seed=1234,
        overrides=overrides,
    )
    spec = workload("B", record_count=25, value_size=32)
    result = WorkloadRunner(store, spec, n_clients=3, duration=0.5, warmup=0.1).run()
    return (
        store.sim.events_processed,
        store.network.stats.messages_sent,
        store.network.stats.bytes_sent,
        result.summary_row(),
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_PR1.json", metavar="PATH")
    parser.add_argument("--events", type=int, default=60_000)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--skip-protocol", action="store_true",
        help="skip the batched-vs-unbatched protocol-plane gate",
    )
    parser.add_argument(
        "--skip-scale", action="store_true",
        help="skip the memory-model bytes/key gate",
    )
    parser.add_argument(
        "--skip-parallel", action="store_true",
        help="skip the sharded-engine determinism + speedup gate",
    )
    parser.add_argument(
        "--skip-clock", action="store_true",
        help="skip the stabilization-plane (notices vs clock) gate",
    )
    parser.add_argument(
        "--skip-partial", action="store_true",
        help="skip the partial geo-replication (replication degree) gate",
    )
    parser.add_argument(
        "--bench-pr10", default="BENCH_PR10.json", metavar="PATH",
        help="committed partial-replication benchmark the bytes/key gate audits",
    )
    parser.add_argument(
        "--bench-pr5", default="BENCH_PR5.json", metavar="PATH",
        help="committed memory benchmark the bytes/key gate compares against",
    )
    parser.add_argument(
        "--kernel", choices=("pure", "compiled"), default=None, metavar="BACKEND",
        help="run the kernel-backend gate: 'compiled' requires the mypyc "
        f"build and >= {KERNEL_SPEEDUP_FLOOR}x the pure kernel rate; "
        "'pure' records the pure rates without a floor",
    )
    args = parser.parse_args(argv)

    recorded = None
    if os.path.exists(args.output):
        with open(args.output) as fh:
            recorded = json.load(fh)

    report = collect_report(
        n_events=args.events, repeats=args.repeats, include_end_to_end=True
    )
    for metric, value in summary_lines(report):
        print(f"  {metric:<34} {value}")

    kernel = report["event_kernel"]
    failures = []
    if kernel["speedup"] < 1.0:
        failures.append(
            f"optimized kernel slower than the seed baseline "
            f"({kernel['speedup']:.2f}x)"
        )
    if recorded is not None:
        recorded_rate = recorded.get("event_kernel", {}).get("optimized_events_per_sec")
        if recorded_rate:
            ratio = kernel["optimized_events_per_sec"] / recorded_rate
            print(
                f"  vs recorded baseline               {ratio:.2f}x "
                f"({recorded_rate:,.0f} events/s recorded)"
            )
            if ratio < REGRESSION_FLOOR:
                failures.append(
                    f"event throughput regressed to {ratio:.0%} of the recorded "
                    f"baseline (floor {REGRESSION_FLOOR:.0%})"
                )

    if not args.skip_protocol:
        proto = bench_protocol_plane(duration=0.4, repeats=args.repeats)
        speedup = proto["ops_per_wall_sec_speedup"]
        print(
            f"  batched / unbatched ops per wall-s "
            f"{proto['batched']['sim_ops_per_wall_sec']:,.0f} / "
            f"{proto['unbatched']['sim_ops_per_wall_sec']:,.0f} ({speedup:.2f}x)"
        )
        print(
            f"  stability msg reduction            "
            f"{proto['stability_message_reduction']:.1f}x"
        )
        if speedup < BATCHED_FLOOR:
            failures.append(
                f"batched config runs at {speedup:.0%} of the unbatched wall "
                f"rate (floor {BATCHED_FLOOR:.0%})"
            )

    if not args.skip_scale:
        from repro.perf import bench_scale

        scale = bench_scale(dict(SCALE_SMOKE))
        opt_bpk = scale["optimized"]["bytes_per_key"]
        legacy_bpk = scale["legacy"]["bytes_per_key"]
        ratio = opt_bpk / legacy_bpk if legacy_bpk else 1.0
        print(
            f"  bytes/key current / legacy         "
            f"{opt_bpk:,.0f} / {legacy_bpk:,.0f} ({ratio:.0%})"
        )
        if not scale["events_match"]:
            failures.append("memory-model arms diverged (events_match false)")
        if ratio >= 1.0:
            failures.append(
                "current memory model costs more bytes/key than the legacy "
                f"layout ({ratio:.0%})"
            )
        committed = None
        if os.path.exists(args.bench_pr5):
            with open(args.bench_pr5) as fh:
                committed = json.load(fh)
        if committed is not None:
            # Absolute bytes/key is scale-dependent (fewer keys amortise
            # less fixed cost), so the gate compares the current-vs-legacy
            # *ratio*, which both this smoke run and the committed file
            # measure in-process on their own scale.
            c_opt = committed.get("optimized", {}).get("bytes_per_key")
            c_legacy = committed.get("legacy", {}).get("bytes_per_key")
            if c_opt and c_legacy:
                committed_ratio = c_opt / c_legacy
                print(
                    f"  vs committed bytes/key ratio       "
                    f"{ratio / committed_ratio:.2f}x "
                    f"(committed {committed_ratio:.0%}, "
                    f"ceiling {BYTES_PER_KEY_CEILING:.2f}x)"
                )
                if ratio > committed_ratio * BYTES_PER_KEY_CEILING:
                    failures.append(
                        f"bytes/key regressed to {ratio:.0%} of legacy — above "
                        f"{BYTES_PER_KEY_CEILING:.0%} of the committed "
                        f"{committed_ratio:.0%} ({args.bench_pr5})"
                    )

    if not args.skip_parallel:
        from repro.perf import bench_parallel_scale

        parallel = bench_parallel_scale(
            workers_list=(1, 2), overrides=dict(PARALLEL_SMOKE)
        )
        runs = {run["workers_requested"]: run for run in parallel["runs"]}
        speedup = runs[2]["speedup_vs_first"]
        cpus = parallel["sched_cpus"] or parallel["host_cpus"] or 1
        print(
            f"  sharded ops/wall-s 1w / 2w         "
            f"{runs[1]['ops_per_wall_sec']:,.0f} / "
            f"{runs[2]['ops_per_wall_sec']:,.0f} ({speedup:.2f}x, {cpus} cpu(s))"
        )
        print(
            f"  sharded trace digests match        {parallel['digests_match']}"
        )
        if not parallel["digests_match"]:
            failures.append(
                "sharded engine trace digests differ between workers=1 and "
                "workers=2 — determinism contract broken"
            )
        if cpus >= 2 and speedup < PARALLEL_SPEEDUP_FLOOR:
            failures.append(
                f"workers=2 wall rate is {speedup:.2f}x workers=1 "
                f"(floor {PARALLEL_SPEEDUP_FLOOR}x on a {cpus}-cpu host)"
            )
        elif cpus < 2:
            print(
                "  (speedup floor not enforced: host schedules a single cpu)"
            )

    if not args.skip_clock:
        from repro.perf import bench_stability_plane

        plane = bench_stability_plane(repeats=1)
        ratio = plane["ops_per_wall_sec_ratio"]
        reduction = plane["stability_bytes_reduction"]
        print(
            f"  clock / notices ops per wall-s     {ratio:.2f}x "
            f"(stability bytes cut {reduction:.1f}x)"
        )
        if ratio < CLOCK_FLOOR:
            failures.append(
                f"clock plane runs at {ratio:.0%} of the notices wall rate "
                f"(floor {CLOCK_FLOOR:.0%})"
            )
        if reduction < CLOCK_BYTES_REDUCTION_FLOOR:
            failures.append(
                f"clock plane cuts stability bytes only {reduction:.1f}x "
                f"(floor {CLOCK_BYTES_REDUCTION_FLOOR}x)"
            )
        if not plane["clock_stable_map_bounded"]:
            failures.append(
                f"clock plane stamp map unbounded "
                f"({plane['clock_stable_map_entries']} live entries)"
            )

    if not args.skip_partial:
        from repro.perf import bench_partial_replication

        partial = bench_partial_replication(repeats=1, **PARTIAL_SMOKE)
        ratio = partial["shipping_bytes_per_key_ratio_r2"]
        census = partial["census_reduction_r2"]
        print(
            f"  r=2 / full shipping bytes per key  {ratio:.0%} "
            f"(census cut {census:.0%}, remote-get p50 "
            f"{partial['remote_get_p50_ms_r2']:.1f} ms)"
        )
        if ratio > PARTIAL_BYTES_RATIO_CEILING:
            failures.append(
                f"r=2 shipping bytes/key is {ratio:.0%} of full replication "
                f"(ceiling {PARTIAL_BYTES_RATIO_CEILING:.0%})"
            )
        if census < PARTIAL_CENSUS_FLOOR:
            failures.append(
                f"r=2 record census shrank only {census:.0%} "
                f"(floor {PARTIAL_CENSUS_FLOOR:.0%})"
            )
        if os.path.exists(args.bench_pr10):
            with open(args.bench_pr10) as fh:
                committed_ratio = json.load(fh).get(
                    "shipping_bytes_per_key_ratio_r2"
                )
            if committed_ratio is not None:
                print(
                    f"  committed BENCH_PR10 bytes/key     {committed_ratio:.0%}"
                )
                if committed_ratio > PARTIAL_BYTES_RATIO_CEILING:
                    failures.append(
                        f"committed {args.bench_pr10} records an r=2 bytes/key "
                        f"ratio of {committed_ratio:.0%} "
                        f"(ceiling {PARTIAL_BYTES_RATIO_CEILING:.0%}) — "
                        "regenerate it from a passing build"
                    )
        # Spelling out full replication (degree == site count) must be
        # a no-op: the golden-trace workload may not move by one byte.
        default_run = _golden_counters(None)
        explicit_run = _golden_counters({"replication_degree": 2})
        print(
            f"  golden trace at explicit r=sites   "
            f"{'unchanged' if default_run == explicit_run else 'DIVERGED'}"
        )
        if default_run != explicit_run:
            failures.append(
                "explicit replication_degree == site count changed the "
                f"golden-trace run: default {default_run[:3]} vs "
                f"explicit {explicit_run[:3]}"
            )

    if args.kernel:
        from repro.perf import bench_hlc_ops, bench_kernel_ops
        from repro.sim.backend import compiled_available

        if args.kernel == "compiled" and not compiled_available():
            print(
                "FAIL: --kernel compiled requested but no mypyc build is "
                "present; run `python scripts/build_kernel.py` first "
                "(requires the [compiled] extra)",
                file=sys.stderr,
            )
            return 1
        kops = bench_kernel_ops(n_events=args.events, repeats=args.repeats)
        hops = bench_hlc_ops(n_ops=args.events, repeats=args.repeats)
        print(
            f"  kernel pure events/s               "
            f"{kops['pure_events_per_sec']:,.0f}"
        )
        if kops["compiled_vs_pure"] is not None:
            print(
                f"  kernel compiled events/s           "
                f"{kops['compiled_events_per_sec']:,.0f} "
                f"({kops['compiled_vs_pure']:.2f}x)"
            )
            print(
                f"  hlc compiled / pure                "
                f"{hops['compiled_vs_pure']:.2f}x"
            )
        if args.kernel == "compiled" and (
            kops["compiled_vs_pure"] is None
            or kops["compiled_vs_pure"] < KERNEL_SPEEDUP_FLOOR
        ):
            measured = kops["compiled_vs_pure"]
            failures.append(
                f"compiled kernel runs at {measured:.2f}x the pure rate "
                f"(floor {KERNEL_SPEEDUP_FLOOR}x) — the build is not "
                "delivering compiled speed"
                if measured is not None
                else "compiled kernel rate could not be measured"
            )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1

    write_report(report, args.output)
    print(f"ok — report written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
