#!/usr/bin/env python
"""Build the opt-in mypyc-compiled simulation kernel (``repro._compiled``).

The three :mod:`repro.kernelcore` modules — ``eventcore`` (event loop),
``vvcore`` (version-vector arithmetic), ``hlccore`` (hybrid logical
clock arithmetic) — are written compilation-clean: fully typed, no
module-level mutable state, no dynamic attribute tricks. This script
compiles *flat copies* of those files with mypyc in a scratch directory
and installs only the resulting extension modules into
``src/repro/_compiled/``; the interpreted tree is never touched, and
the pure backend keeps working whether or not a build exists.

Why flat copies: mypyc bakes the module name into each extension, and
compiling top-level ``eventcore``/``vvcore``/``hlccore`` (rather than
``repro.kernelcore.*``) keeps the compiled names from ever shadowing
the interpreted package — ``repro._compiled/__init__.py`` imports the
flat names explicitly and aliases them under its own namespace.

Usage::

    pip install -e .[compiled]        # mypy (ships mypyc) + setuptools
    python scripts/build_kernel.py    # build + install + self-check
    python scripts/build_kernel.py --check   # report availability only
    python scripts/build_kernel.py --clean   # remove installed extensions

Requires mypy >= 1.0 and a C toolchain. Exits 2 with a plain message —
no partial state — when either is missing; this script never installs
anything.
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
KERNELCORE = SRC / "repro" / "kernelcore"
TARGET = SRC / "repro" / "_compiled"
MODULES = ("eventcore", "vvcore", "hlccore")


def _clean_target() -> int:
    removed = 0
    for so in TARGET.glob("*.so"):
        so.unlink()
        removed += 1
    for pyd in TARGET.glob("*.pyd"):
        pyd.unlink()
        removed += 1
    return removed


def _check() -> int:
    """Report availability via a fresh interpreter (no stale sys.modules)."""
    code = (
        "from repro.sim.backend import compiled_available;"
        "import sys; sys.exit(0 if compiled_available() else 1)"
    )
    env = dict(os.environ, PYTHONPATH=str(SRC))
    ok = subprocess.run([sys.executable, "-c", code], env=env).returncode == 0
    print(f"compiled kernel available: {ok}")
    return 0 if ok else 1


def _self_check() -> None:
    """Fresh-interpreter parity canary: both backends drive 10k events."""
    code = """
import sys
from repro.kernelcore import eventcore as pure
from repro._compiled import eventcore as compiled

def drive(mod):
    sim = mod.Simulator()
    remaining = [100] * 100
    def tick(i):
        remaining[i] -= 1
        if remaining[i]:
            sim.post(0.001 * (i + 1), tick, i)
    for i in range(100):
        sim.post(0.001 * (i + 1), tick, i)
    sim.run()
    return (sim.events_processed, sim.now)

p, c = drive(pure), drive(compiled)
assert p == c, f"backend divergence: pure={p} compiled={c}"
assert compiled.Simulator.__module__ != pure.Simulator.__module__ or \\
    not compiled.__file__.endswith(".py"), "compiled import fell back to source"
print(f"self-check ok: {p[0]} events, identical on both backends")
"""
    env = dict(os.environ, PYTHONPATH=str(SRC))
    subprocess.run([sys.executable, "-c", code], env=env, check=True)


def _build() -> int:
    try:
        from mypyc.build import mypycify  # noqa: F401
    except ImportError:
        print(
            "build_kernel: mypyc is not installed. The compiled kernel is "
            "optional; install the toolchain with `pip install -e .[compiled]` "
            "and re-run. The pure-python backend keeps working without it.",
            file=sys.stderr,
        )
        return 2

    with tempfile.TemporaryDirectory(prefix="repro-mypyc-") as tmp:
        tmpdir = Path(tmp)
        for name in MODULES:
            shutil.copyfile(KERNELCORE / f"{name}.py", tmpdir / f"{name}.py")

        # Drive setuptools in a subprocess so the compiler's working
        # directory, argv, and distutils state can't leak into ours.
        setup_py = tmpdir / "setup.py"
        sources = repr([f"{m}.py" for m in MODULES])
        setup_py.write_text(
            "from mypyc.build import mypycify\n"
            "from setuptools import setup\n"
            f"setup(name='repro-compiled-kernel', ext_modules=mypycify({sources}, "
            "opt_level='3', strip_asserts=False))\n"
        )
        result = subprocess.run(
            [sys.executable, "setup.py", "build_ext", "--inplace"],
            cwd=tmpdir,
        )
        if result.returncode != 0:
            print("build_kernel: mypyc compilation failed", file=sys.stderr)
            return result.returncode

        built = sorted(tmpdir.glob("*.so")) + sorted(tmpdir.glob("*.pyd"))
        if not built:
            print("build_kernel: no extension modules produced", file=sys.stderr)
            return 1
        _clean_target()
        for so in built:
            shutil.copyfile(so, TARGET / so.name)
            print(f"installed {TARGET / so.name}")

    _self_check()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true", help="report whether a build is installed"
    )
    parser.add_argument(
        "--clean", action="store_true", help="remove installed extension modules"
    )
    args = parser.parse_args(argv)
    if args.check:
        return _check()
    if args.clean:
        print(f"removed {_clean_target()} extension module(s) from {TARGET}")
        return 0
    return _build()


if __name__ == "__main__":
    sys.exit(main())
