#!/usr/bin/env python
"""Local analysis gate: linter + annotation coverage + optional mypy.

The one command to run before pushing::

    PYTHONPATH=src python scripts/lint_gate.py

Exit status is non-zero if any layer fails:

1. the determinism linter (``repro.analysis.lint``) over ``src/repro``;
2. the annotation gate (``repro.analysis.typing_gate``) over the
   protocol-critical packages;
3. mypy against the ``pyproject.toml`` configuration — skipped with a
   notice (not a failure) when mypy is not installed, so the gate works
   on minimal environments.

Equivalent to ``python -m repro lint --typing``; this script exists so
CI and git hooks have a stable, argument-free entry point.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis import check_annotations, run_lint, run_mypy  # noqa: E402


def main() -> int:
    failed = False

    violations = run_lint()
    for violation in violations:
        print(violation.format())
    print(f"lint: {len(violations)} violation(s)")
    failed = failed or bool(violations)

    annotations = check_annotations()
    for violation in annotations:
        print(violation.format())
    print(f"typing gate: {len(annotations)} missing annotation(s)")
    failed = failed or bool(annotations)

    mypy = run_mypy()
    if mypy.available:
        if mypy.output.strip():
            print(mypy.output)
        print(f"mypy: exit {mypy.returncode}")
    else:
        print(mypy.output)
    failed = failed or not mypy.clean

    print("lint gate:", "FAILED" if failed else "ok")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
