# All metadata lives in pyproject.toml. The optional mypyc-compiled
# kernel is deliberately built out-of-band by scripts/build_kernel.py
# (after `pip install -e .[compiled]`) so a plain install never needs a
# C toolchain; any extensions it drops into src/repro/_compiled/ ship
# via the package-data entry in pyproject.toml.
from setuptools import setup

setup()
